"""Declarative, hashable scenario descriptions.

A :class:`ScenarioSpec` is the single source of truth for *what to
simulate*: experiment axes (benchmarks, VMs, platforms, collectors,
heaps, seeds, input scales, DAQ periods, DVFS points), run parameters
(warm-up, repetitions, fan, slices, seed derivation), and hardware
constant overrides.  Every layer builds from it:

* the CLI loads specs from TOML/JSON files (``repro run --spec``,
  ``repro campaign --spec``, ``repro spec validate|show|hash``) and the
  flag-based path is a thin adapter that builds the same spec
  (:meth:`ScenarioSpec.for_experiment`), so both paths are provably
  identical;
* :meth:`ScenarioSpec.campaign_config` / :meth:`experiment_config`
  produce the existing config dataclasses;
* :func:`build_platform` / :func:`build_vm` construct the simulated
  hardware and VM for a cell through the component registries.

Specs are validated against the registries
(:meth:`ScenarioSpec.validate`), canonically serialized
(:meth:`canonical_json`), and SHA-256 hashed (:meth:`spec_hash`).  The
same canonicalization underlies the campaign cache key
(:func:`canonical_experiment_dict`), so the spec hash and the on-disk
cell keys are two views of one identity.

TOML schema (every key optional except one benchmark axis)::

    version = 2
    name = "heap-ladder"
    description = "GenCopy vs SemiSpace over the P6 heap ladder"

    [axes]
    benchmarks = ["_202_jess", "_209_db"]
    vms = ["jikes"]
    platforms = ["p6"]
    collectors = ["SemiSpace", "GenCopy"]   # "default" = VM default
    heap_mbs = [32, 48, 64]
    seeds = [42]
    input_scales = [1.0]
    daq_periods_s = [40e-6]
    dvfs_freq_scales = ["default"]          # "default" = no DVFS pin
    hpm_periods_s = ["default"]             # "default" = platform period
    hpm_rotations = ["default"]             # or presets: "xscale-pairs",
                                            # "round-robin", "resident"

    [run]
    warmup = true
    repetitions = 1
    fan_enabled = true
    n_slices = 160
    derive_seeds = false

    [overrides]                 # hardware constants, applied per cell
    clock_scale = 0.8
    hpm_period_s = 2e-3

Singular spellings (``benchmark = "_202_jess"``, ``heap_mb = 64``) are
accepted for every axis and normalized to one-element tuples.
"""

import hashlib
import json
from dataclasses import asdict, dataclass
from pathlib import Path

from repro import registry
from repro.campaign.grid import CampaignConfig
from repro.errors import ConfigurationError, SpecValidationError
from repro.hardware.platform import (
    make_platform,
    override_problems,
    validate_overrides,
)
from repro.jvm.vm import make_vm
from repro.measurement.multiplexing import resolve_rotation
from repro.units import DAQ_SAMPLE_PERIOD_S

#: Current scenario schema version.  Version 1 keeps the legacy
#: derived-seed identity (see
#: :func:`repro.campaign.grid.derive_cell_seed`); version 2 hashes the
#: full cell identity.
SPEC_VERSION = 2

def _coerce_rotation(value):
    """Canonicalize one rotation-axis element.

    Delegates to
    :func:`repro.measurement.multiplexing.resolve_rotation` but raises
    ``ValueError`` so the axis-coercion loop reports it as a malformed
    value like any other axis."""
    from repro.errors import MeasurementError

    try:
        return resolve_rotation(value)
    except MeasurementError as exc:
        raise ValueError(str(exc)) from None


#: Axis fields, their singular spellings, and element coercions.
_AXES = {
    "benchmarks": ("benchmark", str),
    "vms": ("vm", str),
    "platforms": ("platform", str),
    "collectors": ("collector", lambda v: v),
    "heap_mbs": ("heap_mb", int),
    "seeds": ("seed", int),
    "input_scales": ("input_scale", float),
    "daq_periods_s": ("daq_period_s", float),
    "dvfs_freq_scales": ("dvfs_freq_scale", lambda v: v),
    "hpm_periods_s": ("hpm_period_s", float),
    "hpm_rotations": ("hpm_rotation", _coerce_rotation),
}

#: Axes added after the v2 spec schema shipped, with the defaults under
#: which they are omitted from :meth:`ScenarioSpec.canonical_dict` —
#: specs that don't sweep them keep their historical hashes (the replay
#: goldens pin those), exactly like :data:`_POST_V1_CONFIG_DEFAULTS`
#: does for cache keys.
_POST_V2_AXIS_DEFAULTS = {
    "hpm_periods_s": (None,),
    "hpm_rotations": (None,),
}

#: Scalar run-parameter fields.
_RUN_FIELDS = ("warmup", "repetitions", "fan_enabled", "n_slices",
               "derive_seeds")


def _sentinel_none(value):
    """Map the TOML-friendly spellings of "no value" to ``None``."""
    if isinstance(value, str) and value.lower() in ("default", "none"):
        return None
    return value


@dataclass(frozen=True)
class ScenarioSpec:
    """One validated, hashable description of a result matrix."""

    benchmarks: tuple
    name: str = ""
    description: str = ""
    version: int = SPEC_VERSION
    vms: tuple = ("jikes",)
    platforms: tuple = ("p6",)
    collectors: tuple = (None,)
    heap_mbs: tuple = (64,)
    seeds: tuple = (42,)
    input_scales: tuple = (1.0,)
    daq_periods_s: tuple = (DAQ_SAMPLE_PERIOD_S,)
    dvfs_freq_scales: tuple = (None,)
    #: Measurement-side axes (``None`` = platform default / single-pass
    #: sampler): excluded from the sim-key, so sweeping them shares one
    #: recorded artifact per simulation identity.
    hpm_periods_s: tuple = (None,)
    hpm_rotations: tuple = (None,)
    warmup: bool = True
    repetitions: int = 1
    fan_enabled: bool = True
    n_slices: int = 160
    derive_seeds: bool = False
    overrides: tuple = ()

    def __post_init__(self):
        problems = []
        for axis, (_, coerce) in _AXES.items():
            value = getattr(self, axis)
            if isinstance(value, (str, int, float)) or value is None:
                value = (value,)
            value = tuple(
                _sentinel_none(v) if v is None or isinstance(v, str)
                else v
                for v in value
            )
            try:
                value = tuple(
                    v if v is None else coerce(v) for v in value
                )
            except (TypeError, ValueError):
                problems.append(
                    f"{axis} has a malformed value in "
                    f"{tuple(value)!r}"
                )
                continue
            if not value:
                problems.append(f"{axis} cannot be empty")
                continue
            object.__setattr__(self, axis, value)
        bad_overrides = override_problems(self.overrides)
        if bad_overrides:
            problems.extend(bad_overrides)
        else:
            object.__setattr__(
                self, "overrides", validate_overrides(self.overrides)
            )
        if self.version not in (1, 2):
            problems.append(
                f"unknown spec version {self.version!r} (supported: 1, 2)"
            )
        if problems:
            raise SpecValidationError(problems)

    # -- construction --------------------------------------------------

    @classmethod
    def for_experiment(cls, benchmark, vm="jikes", platform="p6",
                       collector=None, heap_mb=64, seed=42,
                       input_scale=1.0, daq_period_s=DAQ_SAMPLE_PERIOD_S,
                       dvfs_freq_scale=None, hpm_period_s=None,
                       hpm_rotation=None, warmup=True, repetitions=1,
                       fan_enabled=True, n_slices=160, overrides=(),
                       name=""):
        """Single-cell spec — the adapter the CLI flag path goes
        through, so flags and spec files drive identical machinery."""
        return cls(
            benchmarks=(benchmark,), name=name, vms=(vm,),
            platforms=(platform,), collectors=(collector,),
            heap_mbs=(heap_mb,), seeds=(seed,),
            input_scales=(input_scale,),
            daq_periods_s=(daq_period_s,),
            dvfs_freq_scales=(dvfs_freq_scale,),
            hpm_periods_s=(hpm_period_s,),
            hpm_rotations=(hpm_rotation,),
            warmup=warmup, repetitions=repetitions,
            fan_enabled=fan_enabled, n_slices=n_slices,
            overrides=overrides,
        )

    @classmethod
    def from_dict(cls, data, source=""):
        """Build a spec from a parsed TOML/JSON document.

        Accepts the sectioned schema (``[axes]``/``[run]``/
        ``[overrides]``) and flat top-level keys; every axis also
        accepts its singular spelling.  Unknown keys are errors — a
        typo in a spec file must not silently become a default.
        """
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"scenario spec must be a table/object, got "
                f"{type(data).__name__}{f' in {source}' if source else ''}"
            )
        problems = []
        flat = {}
        sections = dict(data)
        schema = sections.pop("schema", "repro-scenario")
        if schema != "repro-scenario":
            raise ConfigurationError(
                f"not a scenario spec: schema {schema!r}"
                f"{f' in {source}' if source else ''}"
            )
        for section in ("axes", "run"):
            content = sections.pop(section, {})
            if not isinstance(content, dict):
                problems.append(
                    f"[{section}] must be a table, got {content!r}"
                )
                continue
            flat.update(content)
        overrides = sections.pop("overrides", {})
        flat.update(sections)

        singular_to_axis = {
            singular: axis for axis, (singular, _) in _AXES.items()
        }
        kwargs = {"overrides": overrides}
        known = (
            set(_AXES) | set(singular_to_axis) | set(_RUN_FIELDS)
            | {"version", "name", "description"}
        )
        unknown = set(flat) - known
        if unknown:
            problems.append(
                f"unknown scenario keys {sorted(unknown)}; known keys: "
                f"{sorted(known)}"
            )
        for key, value in flat.items():
            if key in unknown:
                continue
            axis = singular_to_axis.get(key)
            if axis is not None:
                if axis in kwargs:
                    problems.append(f"both {key!r} and {axis!r} given")
                    continue
                kwargs[axis] = (value,)
            elif key in _AXES:
                if key in kwargs:
                    problems.append(
                        f"both {_AXES[key][0]!r} and {key!r} given"
                    )
                    continue
                kwargs[key] = tuple(value) if isinstance(
                    value, (list, tuple)
                ) else (value,)
            else:
                kwargs[key] = value
        if "benchmarks" not in kwargs:
            problems.append("scenario spec names no benchmarks")
        if problems:
            raise SpecValidationError(problems, context=source)
        try:
            return cls(**kwargs)
        except SpecValidationError as exc:
            if source and not exc.context:
                raise SpecValidationError(
                    exc.problems, context=source
                ) from None
            raise

    @classmethod
    def from_bytes(cls, raw, fmt=None, source=""):
        """Parse a spec from raw TOML/JSON bytes (or text).

        This is the experiment service's body-parsing entry point
        (``POST /v1/jobs``) as well as the file loader's core.  *fmt*
        is ``"toml"`` or ``"json"``; when ``None`` the format is
        sniffed — bodies whose first non-whitespace byte is ``{`` parse
        as JSON, everything else as TOML.
        """
        if isinstance(raw, str):
            raw = raw.encode("utf-8")
        if fmt is None:
            head = raw.lstrip()[:1]
            fmt = "json" if head in (b"{", b"[") else "toml"
        fmt = fmt.lower()
        where = f"{source}: " if source else ""
        if fmt == "toml":
            import tomllib

            try:
                data = tomllib.loads(raw.decode("utf-8"))
            except (tomllib.TOMLDecodeError, UnicodeDecodeError) as exc:
                raise ConfigurationError(
                    f"{where}invalid TOML: {exc}"
                ) from None
        elif fmt == "json":
            try:
                data = json.loads(raw)
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                raise ConfigurationError(
                    f"{where}invalid JSON: {exc}"
                ) from None
        else:
            raise ConfigurationError(
                f"{where}unsupported spec format {fmt!r} "
                "(use toml or json)"
            )
        return cls.from_dict(data, source=source)

    @classmethod
    def from_file(cls, path):
        """Load a spec from a ``.toml`` or ``.json`` file."""
        path = Path(path)
        try:
            raw = path.read_bytes()
        except OSError as exc:
            raise ConfigurationError(f"cannot read spec: {exc}") from None
        suffix = path.suffix.lower()
        if suffix not in (".toml", ".json"):
            raise ConfigurationError(
                f"{path}: unsupported spec format {suffix!r} "
                "(use .toml or .json)"
            )
        return cls.from_bytes(raw, fmt=suffix[1:], source=str(path))

    # -- validation ----------------------------------------------------

    def problems(self):
        """Registry and range checks; returns a list of problem strings
        (empty when the spec is valid)."""
        problems = []
        for bench in self.benchmarks:
            if bench not in registry.WORKLOADS:
                problems.append(f"unknown benchmark {bench!r}")
        for vm in self.vms:
            if vm not in registry.VMS:
                problems.append(f"unknown vm {vm!r}")
        for platform in self.platforms:
            if platform not in registry.PLATFORMS:
                problems.append(f"unknown platform {platform!r}")
        known_vms = [vm for vm in self.vms if vm in registry.VMS]
        for collector in self.collectors:
            if collector is None:
                continue
            if collector not in registry.COLLECTORS:
                problems.append(f"unknown collector {collector!r}")
            elif known_vms and not any(
                registry.collector_supported(vm, collector)
                for vm in known_vms
            ):
                problems.append(
                    f"collector {collector!r} is implemented by none "
                    f"of the spec's VMs {list(self.vms)}"
                )
        for heap in self.heap_mbs:
            if heap <= 0:
                problems.append(f"heap_mb {heap} must be positive")
        for seed in self.seeds:
            if seed < 0:
                problems.append(f"seed {seed} must be >= 0")
        for scale in self.input_scales:
            if scale <= 0:
                problems.append(
                    f"input_scale {scale} must be positive"
                )
        for period in self.daq_periods_s:
            if period <= 0:
                problems.append(
                    f"daq_period_s {period} must be positive"
                )
        for dvfs in self.dvfs_freq_scales:
            if dvfs is not None and not (0.1 < dvfs <= 1.0):
                problems.append(
                    f"dvfs_freq_scale {dvfs} must be in (0.1, 1]"
                )
        for period in self.hpm_periods_s:
            if period is not None and period <= 0:
                problems.append(
                    f"hpm_period_s {period} must be positive"
                )
        if self.repetitions < 1:
            problems.append("repetitions must be >= 1")
        if self.n_slices < 1:
            problems.append("n_slices must be >= 1")
        if not problems:
            try:
                self.cells()
            except ConfigurationError as exc:
                problems.append(str(exc))
        return problems

    def validate(self):
        """Raise :class:`SpecValidationError` listing every problem."""
        problems = self.problems()
        if problems:
            raise SpecValidationError(
                problems,
                context=("invalid scenario"
                         + (f" {self.name!r}" if self.name else "")),
            )
        return self

    # -- canonical form and hashing ------------------------------------

    def canonical_dict(self):
        """The spec's identity as a plain dict.

        Excludes ``name`` and ``description`` (labels, not identity)
        and normalizes overrides to a mapping, so two specs that
        simulate identically canonicalize identically.
        """
        return {
            "schema": "repro-scenario",
            "version": self.version,
            "axes": {
                axis: list(getattr(self, axis)) for axis in _AXES
                # Post-v2 axes at their defaults are omitted so specs
                # that predate them keep their pinned hashes.
                if _POST_V2_AXIS_DEFAULTS.get(axis)
                != getattr(self, axis)
            },
            "run": {
                field: getattr(self, field) for field in _RUN_FIELDS
            },
            "overrides": dict(self.overrides),
        }

    def canonical_json(self):
        """Deterministic JSON encoding of :meth:`canonical_dict`."""
        return json.dumps(self.canonical_dict(), sort_keys=True,
                          separators=(",", ":"))

    def spec_hash(self):
        """SHA-256 over :meth:`canonical_json` — stable across
        processes and platforms; feeds campaign reports and cache
        bookkeeping."""
        return hashlib.sha256(
            self.canonical_json().encode("utf-8")
        ).hexdigest()

    def to_dict(self):
        """Round-trippable plain dict (includes the label fields)."""
        data = self.canonical_dict()
        if self.name:
            data["name"] = self.name
        if self.description:
            data["description"] = self.description
        return data

    # -- builders ------------------------------------------------------

    def campaign_config(self):
        """The spec as a :class:`~repro.campaign.grid.CampaignConfig`."""
        return CampaignConfig(
            benchmarks=self.benchmarks,
            vms=self.vms,
            platforms=self.platforms,
            collectors=self.collectors,
            heap_mbs=self.heap_mbs,
            seeds=self.seeds,
            input_scale=self.input_scales[0],
            warmup=self.warmup,
            repetitions=self.repetitions,
            fan_enabled=self.fan_enabled,
            n_slices=self.n_slices,
            daq_period_s=self.daq_periods_s[0],
            dvfs_freq_scale=self.dvfs_freq_scales[0],
            derive_seeds=self.derive_seeds,
            input_scales=self.input_scales,
            daq_periods_s=self.daq_periods_s,
            dvfs_freq_scales=self.dvfs_freq_scales,
            hpm_period_s=self.hpm_periods_s[0],
            hpm_rotation=self.hpm_rotations[0],
            hpm_periods_s=self.hpm_periods_s,
            hpm_rotations=self.hpm_rotations,
            overrides=self.overrides,
            spec_version=self.version,
        )

    def cells(self):
        """Expanded :class:`ExperimentConfig` cells, in grid order."""
        return self.campaign_config().cells()

    @property
    def is_single_cell(self):
        return all(
            len(getattr(self, axis)) == 1 for axis in _AXES
        )

    def experiment_config(self):
        """The spec's single cell as an :class:`ExperimentConfig`.

        Valid only for single-cell specs (every axis has exactly one
        value); goes through the same grid expansion as campaigns, so
        a flag-built run and a one-cell campaign are the same cell.
        """
        cells = self.cells()
        if len(cells) != 1:
            raise ConfigurationError(
                f"spec expands to {len(cells)} cells; "
                "`experiment_config` needs exactly one (use "
                "`campaign_config` for matrices)"
            )
        return cells[0]


# -- cell builders (registry-backed) ----------------------------------

def build_platform(config):
    """Fresh :class:`~repro.hardware.platform.Platform` for a cell."""
    return make_platform(
        config.platform,
        fan_enabled=config.fan_enabled,
        overrides=getattr(config, "overrides", ()),
    )


def build_vm(config, platform=None, obs=None):
    """Fresh VM for a cell (building the platform too if not given)."""
    if platform is None:
        platform = build_platform(config)
    return make_vm(
        config.vm,
        platform,
        collector=config.collector,
        heap_mb=config.heap_mb,
        seed=config.seed,
        n_slices=config.n_slices,
        dvfs_freq_scale=config.dvfs_freq_scale,
        obs=obs,
    )


# -- experiment-config canonicalization (cache keys) -------------------

#: Fields added after the v1 cache schema, with the default values
#: under which they are omitted from the canonical dict — so configs
#: that don't use them keep their historical cache keys byte-for-byte.
_POST_V1_CONFIG_DEFAULTS = {
    "overrides": (),
    "hpm_period_s": None,
    "hpm_rotation": None,
}


def canonical_experiment_dict(config):
    """Canonical plain-dict identity of an :class:`ExperimentConfig`.

    This is the campaign cache's key material: every field that affects
    the simulation is present; post-v1 fields are dropped when they
    hold their defaults so unchanged configs keep their existing keys.
    """
    data = asdict(config)
    for key, default in _POST_V1_CONFIG_DEFAULTS.items():
        if key not in data:
            continue
        value = data[key]
        # Tuple-valued fields normalize falsy spellings (None, (),
        # empty list) to their empty-tuple default; scalar fields
        # compare plainly so a legitimate falsy *value* (0) is never
        # conflated with an unset None.
        if isinstance(default, tuple):
            matches = tuple(value or ()) == default
        else:
            matches = value == default
        if matches:
            del data[key]
    return data


# -- simulation vs measurement axis classification ---------------------

#: :class:`~repro.core.experiment.ExperimentConfig` fields that shape
#: the simulated execution itself (the VM run and its ground-truth
#: timeline).  Two configs that agree on these produce bit-identical
#: timelines and port histories, whatever their measurement knobs say.
#: ``n_slices`` is a simulation field — it sets how many workload
#: slices the generator emits, so it changes the timeline (the issue
#: text groups it with measurement knobs, but excluding it would let
#: two different executions share one artifact).  ``overrides`` is
#: classified as simulation wholesale: most supported overrides alter
#: the hardware model, and the one that does not (``hpm_period_s``)
#: merely makes the key conservative, never wrong.
SIMULATION_CONFIG_FIELDS = (
    "benchmark", "vm", "platform", "collector", "heap_mb", "seed",
    "input_scale", "warmup", "repetitions", "fan_enabled", "n_slices",
    "dvfs_freq_scale", "overrides",
)

#: Fields that only configure how the finished run is *observed*.
#: Changing them re-runs the measurement pass over the same artifact.
MEASUREMENT_CONFIG_FIELDS = (
    "daq_period_s", "hpm_period_s", "hpm_rotation",
)

#: :class:`ScenarioSpec` axes by phase, for docs and CLI surfacing.
SIMULATION_AXES = (
    "benchmarks", "vms", "platforms", "collectors", "heap_mbs",
    "seeds", "input_scales", "dvfs_freq_scales",
)
MEASUREMENT_AXES = ("daq_periods_s", "hpm_periods_s", "hpm_rotations")


def canonical_sim_dict(config):
    """Simulation-only subset of :func:`canonical_experiment_dict`.

    This is the artifact cache's key material: every field that affects
    the simulated execution, none that only affects measurement.  It is
    a *projection* of the full canonical dict (same omission rules for
    post-v1 defaults), so existing full-config cache keys are untouched
    and the two identities can never disagree about a shared field.
    """
    data = canonical_experiment_dict(config)
    return {
        key: value for key, value in data.items()
        if key not in MEASUREMENT_CONFIG_FIELDS
    }


def strict_canonical_json(obj, what="config"):
    """Deterministic JSON for hash material — no silent coercions.

    Cache keys and provenance envelopes are load-bearing identities: a
    value that only serializes through ``default=str`` would be
    type-erased into whatever its ``repr``/``str`` happens to be, a
    hash-stability hazard (two distinct objects can stringify alike,
    and one object's string can change across versions).  Any value
    outside the canonical JSON types therefore raises a
    :class:`~repro.errors.ConfigurationError` naming the offender
    instead of being coerced.
    """
    def reject(value):
        raise ConfigurationError(
            f"{what} value {value!r} of type {type(value).__name__} "
            "is not canonically JSON-serializable (allowed: str, int, "
            "float, bool, None, and lists/dicts of them)"
        )

    return json.dumps(obj, sort_keys=True, default=reject)


__all__ = [
    "MEASUREMENT_AXES",
    "MEASUREMENT_CONFIG_FIELDS",
    "SIMULATION_AXES",
    "SIMULATION_CONFIG_FIELDS",
    "SPEC_VERSION",
    "ScenarioSpec",
    "SpecValidationError",
    "build_platform",
    "build_vm",
    "canonical_experiment_dict",
    "canonical_sim_dict",
    "strict_canonical_json",
]
