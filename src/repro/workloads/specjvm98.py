"""SpecJVM98 benchmark models (run with the full ``-s100`` data set).

Volumes (bytecodes executed, bytes allocated, live-set sizes) and code
structure (class/method counts) follow the published characterizations of
SpecJVM98 under the Jikes RVM; the microarchitectural overrides encode
each benchmark's well-known character (``_201_compress`` and
``_222_mpegaudio`` are compute-bound with high IPC; ``_209_db`` chases
pointers through a memory-resident database with poor locality; ...).

``_209_db``'s :class:`~repro.workloads.spec.GCBurstSpec` models the dense
scan of its resident record index during collection — the reason the
paper's Figure 8 shows `_209_db` as the one benchmark whose *GC* sets the
peak-power envelope (17.5 W).
"""

from repro.units import KB, MB
from repro.workloads.spec import BenchmarkSpec, GCBurstSpec

SPECJVM98 = (
    BenchmarkSpec(
        name="_201_compress",
        suite="SpecJVM98",
        description="A modified Lempel-Ziv compression algorithm",
        bytecodes=2.6e9,
        alloc_bytes=300 * MB,
        live_bytes=int(5.5 * MB),
        young_frac=0.90,
        young_mean_bytes=640 * KB,
        app_classes=50,
        methods=420,
        app_overrides={
            "l1_miss_rate": 0.035,
            "locality": 0.88,
            "mix": 1.06,
        },
        burstiness=1.3,
        immortal_frac=0.004,
    ),
    BenchmarkSpec(
        name="_202_jess",
        suite="SpecJVM98",
        description="A Java Expert Shell System",
        bytecodes=1.6e9,
        alloc_bytes=1300 * MB,
        live_bytes=int(3.5 * MB),
        young_frac=0.93,
        young_mean_bytes=320 * KB,
        app_classes=160,
        methods=1100,
        mutation_rate_per_mb=2.0,
        immortal_frac=0.001,
    ),
    BenchmarkSpec(
        name="_209_db",
        suite="SpecJVM98",
        description="Database application working on a memory-resident "
                    "database",
        bytecodes=2.6e9,
        alloc_bytes=900 * MB,
        live_bytes=int(7.2 * MB),
        young_frac=0.90,
        young_mean_bytes=384 * KB,
        immortal_frac=0.0015,
        app_classes=60,
        methods=480,
        mutation_rate_per_mb=6.0,
        long_lived_mutation_bias=0.8,
        app_overrides={
            "l1_miss_rate": 0.085,
            "locality": 0.60,
            "spatial": 0.70,
            "mix": 0.96,
        },
        gc_burst=GCBurstSpec(fraction=0.15, cpi_scale=0.45, mix=1.06),
    ),
    BenchmarkSpec(
        name="_213_javac",
        suite="SpecJVM98",
        description="A Java compiler based on SDK 1.02",
        bytecodes=2.9e9,
        alloc_bytes=1800 * MB,
        live_bytes=int(7.5 * MB),
        young_frac=0.93,
        young_mean_bytes=448 * KB,
        app_classes=820,
        methods=5200,
        method_bytecode_bytes=480,
        mutation_rate_per_mb=4.0,
        app_overrides={"l1_miss_rate": 0.055},
        immortal_frac=0.001,
    ),
    BenchmarkSpec(
        name="_222_mpegaudio",
        suite="SpecJVM98",
        description="Audio decoder based on the ISO MPEG Layer-3 standard",
        bytecodes=2.9e9,
        alloc_bytes=25 * MB,
        live_bytes=int(2.5 * MB),
        young_frac=0.90,
        app_classes=90,
        methods=800,
        method_bytecode_bytes=2000,
        zipf_s=1.30,
        app_overrides={
            "l1_miss_rate": 0.018,
            "locality": 0.92,
            "mix": 1.12,
        },
        burstiness=1.4,
        immortal_frac=0.010,
    ),
    BenchmarkSpec(
        name="_227_mtrt",
        suite="SpecJVM98",
        description="Raytracing application",
        bytecodes=2.2e9,
        alloc_bytes=1000 * MB,
        live_bytes=int(8.0 * MB),
        young_frac=0.975,
        young_mean_bytes=384 * KB,
        app_classes=110,
        methods=760,
        app_overrides={"l1_miss_rate": 0.060, "locality": 0.75},
        immortal_frac=0.0015,
    ),
    BenchmarkSpec(
        name="_228_jack",
        suite="SpecJVM98",
        description="A Java Parser generator",
        bytecodes=1.7e9,
        alloc_bytes=1200 * MB,
        live_bytes=int(3.2 * MB),
        young_frac=0.93,
        young_mean_bytes=320 * KB,
        app_classes=130,
        methods=920,
        immortal_frac=0.001,
    ),
)

#: The five SpecJVM98 benchmarks the paper reruns on the PXA255 with the
#: reduced ``-s10`` input (Section VI-E).
PXA255_BENCHMARKS = (
    "_201_compress",
    "_202_jess",
    "_209_db",
    "_213_javac",
    "_228_jack",
)

#: Input scale factor representing ``-s10`` relative to ``-s100``.
S10_INPUT_SCALE = 0.1
