"""Benchmark descriptors and the object-lifetime model.

A :class:`BenchmarkSpec` is immutable and purely declarative; binding it
to a random generator and an input scale produces a
:class:`~repro.workloads.generator.WorkloadRun` that the VM executes.

Lifetimes follow the weak generational hypothesis as a three-component
mixture over *allocation time* (bytes allocated so far):

* a ``young_frac`` fraction of bytes dies with an exponential lifetime of
  mean ``young_mean_bytes`` (most objects die young);
* a small ``immortal_frac`` fraction lives until program exit;
* the remainder dies with a longer exponential lifetime whose mean is
  *solved* so that the steady-state live size matches ``live_bytes``
  (the expected live size under an allocation-time lifetime distribution
  is simply its mean, since one byte of clock passes per byte allocated).
"""

import math
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.jvm.objects import IMMORTAL
from repro.units import KB, MB


@dataclass(frozen=True)
class GCBurstSpec:
    """Optional high-power burst inside GC trace phases (see
    :class:`repro.jvm.gc.cost.GCBurstProfile`)."""

    fraction: float = 0.0
    cpi_scale: float = 0.45
    mix: float = 1.12


@dataclass(frozen=True)
class BenchmarkSpec:
    """Workload model of one benchmark (full input size)."""

    name: str
    suite: str
    description: str

    # Execution volume.
    bytecodes: float            # total bytecodes executed
    alloc_bytes: int            # total bytes allocated
    live_bytes: int             # steady-state live-set target

    # Lifetime structure.
    young_frac: float = 0.88
    young_mean_bytes: int = 512 * KB
    immortal_frac: float = 0.005

    # Code structure.
    app_classes: int = 200
    system_classes: int = 240
    class_file_bytes: int = 5 * KB
    methods: int = 1200
    method_bytecode_bytes: int = 550
    zipf_s: float = 1.05

    # Mutation (write-barrier) behavior.
    mutation_rate_per_mb: float = 3.0
    long_lived_mutation_bias: float = 0.6

    # Microarchitectural character of the application code.
    app_overrides: dict = field(default_factory=dict)
    burstiness: float = 1.0     # scales slice-to-slice power variation
    gc_burst: GCBurstSpec = field(default_factory=GCBurstSpec)

    # Cohort granularity (bytes of real allocation per simulated object).
    cohort_bytes: int = 16 * KB

    def __post_init__(self):
        if self.alloc_bytes <= 0 or self.live_bytes <= 0:
            raise ConfigurationError("allocation/live sizes must be positive")
        if not (0.0 < self.young_frac < 1.0):
            raise ConfigurationError("young_frac must be in (0, 1)")
        if self.immortal_frac < 0 or (
            self.young_frac + self.immortal_frac >= 1.0
        ):
            raise ConfigurationError("lifetime fractions must leave room "
                                     "for the mid-lived component")
        if self.live_bytes > self.alloc_bytes:
            raise ConfigurationError("live set cannot exceed total "
                                     "allocation")

    # -- lifetime model -------------------------------------------------

    @property
    def mid_frac(self):
        return 1.0 - self.young_frac - self.immortal_frac

    def mid_mean_bytes(self):
        """Mean lifetime of the mid-lived component, solved so that the
        time-averaged live size approximates ``live_bytes``."""
        immortal_term = self.immortal_frac * self.alloc_bytes / 2.0
        young_term = self.young_frac * self.young_mean_bytes
        residual = self.live_bytes - young_term - immortal_term
        floor = 2.0 * self.young_mean_bytes
        if self.mid_frac <= 0:
            return floor
        return max(residual / self.mid_frac, floor)

    def expected_final_live_bytes(self):
        """Approximate live size at program end (steady churn plus the
        fully accumulated immortal component) — used to check that a
        benchmark fits a given collector/heap combination."""
        churn = (
            self.young_frac * self.young_mean_bytes
            + self.mid_frac * self.mid_mean_bytes()
        )
        return churn + self.immortal_frac * self.alloc_bytes

    def draw_lifetime(self, rng):
        """Sample one cohort lifetime (in allocation-clock bytes)."""
        u = rng.random()
        if u < self.immortal_frac:
            return IMMORTAL
        if u < self.immortal_frac + self.young_frac:
            return rng.exponential(self.young_mean_bytes)
        return rng.exponential(self.mid_mean_bytes())

    def draw_cohort_size(self, rng):
        """Sample one cohort size (bytes)."""
        size = rng.lognormal(
            math.log(self.cohort_bytes), 0.45
        )
        return int(min(max(size, 2 * KB), 256 * KB))

    # -- derived quantities ----------------------------------------------

    def scaled(self, input_scale, live_scale=None):
        """A reduced-input variant (e.g. SpecJVM98 ``-s10``): execution
        and allocation volume shrink by ``input_scale``; the live set
        shrinks more slowly (structures are input-dependent but not
        proportional)."""
        from dataclasses import replace

        if live_scale is None:
            live_scale = min(1.0, input_scale ** 0.5)
        return replace(
            self,
            bytecodes=self.bytecodes * input_scale,
            alloc_bytes=int(self.alloc_bytes * input_scale),
            live_bytes=max(int(self.live_bytes * live_scale), 512 * KB),
        )

    def nominal_cohorts(self):
        """Approximate number of cohorts a full run allocates."""
        return int(self.alloc_bytes / self.cohort_bytes)

    def __str__(self):
        return (
            f"{self.name} [{self.suite}]: {self.bytecodes / 1e9:.1f}G "
            f"bytecodes, {self.alloc_bytes / MB:.0f} MB alloc, "
            f"{self.live_bytes / MB:.1f} MB live"
        )
