"""Deterministic workload generation.

Binding a :class:`~repro.workloads.spec.BenchmarkSpec` to a seeded random
generator yields a :class:`WorkloadRun`: the concrete program the VM
executes.  The run is presented to the VM as a sequence of
:class:`Slice` records — equal shares of the benchmark's bytecode volume,
each carrying the classes first touched, the methods first invoked, the
allocation demand, and the slice's execution "weather" (IPC/mix jitter,
which is what gives the application its bursty power profile and peaks).

First-touch behavior follows the classic startup curve: the probability
mass of class first-touches and method first-invocations is concentrated
early in the run (drawn as ``u^3`` over run position), producing the long
initialization period the paper observes for Kaffe on the PXA255.
"""

import math
from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.errors import ConfigurationError
from repro.jvm.classloader import ClassSpec
from repro.jvm.compiler.method import JavaMethod, MethodTable

#: Default number of slices a run is divided into.
DEFAULT_SLICES = 160

#: Exponent of the first-touch position distribution (u^k over [0,1]).
FIRST_TOUCH_EXPONENT = 3.0


@dataclass
class Slice:
    """One unit of application progress handed to the VM."""

    index: int
    bytecodes: float
    alloc_bytes: int
    class_loads: List[ClassSpec] = field(default_factory=list)
    method_calls: List[JavaMethod] = field(default_factory=list)
    mutations: int = 0
    cpi_jitter: float = 1.0
    mix_jitter: float = 1.0


class WorkloadRun:
    """A benchmark instance: concrete classes, methods, and slices."""

    def __init__(self, spec, rng, input_scale=1.0, n_slices=DEFAULT_SLICES):
        if n_slices < 4:
            raise ConfigurationError("need at least 4 slices")
        self.spec = spec if input_scale == 1.0 else spec.scaled(input_scale)
        self.base_spec = spec
        self.rng = rng
        self.n_slices = n_slices
        self._build_classes()
        self._build_methods()
        self._build_slices()

    # -- program structure -------------------------------------------

    def _build_classes(self):
        spec = self.spec
        rng = self.rng
        classes = []
        for i in range(spec.app_classes):
            size = int(
                min(
                    max(rng.lognormal(math.log(spec.class_file_bytes), 0.5),
                        1024),
                    64 * 1024,
                )
            )
            classes.append(
                ClassSpec(name=f"{spec.name}.C{i}", file_bytes=size,
                          is_system=False)
            )
        for i in range(spec.system_classes):
            size = int(
                min(max(rng.lognormal(math.log(4096), 0.5), 1024), 48 * 1024)
            )
            classes.append(
                ClassSpec(name=f"java.sys.S{i}", file_bytes=size,
                          is_system=True)
            )
        self.classes = classes
        # First-touch position of each class, as a fraction of the run.
        self._class_touch = rng.random(len(classes)) ** FIRST_TOUCH_EXPONENT

    def _build_methods(self):
        spec = self.spec
        rng = self.rng
        ranks = np.arange(1, spec.methods + 1, dtype=np.float64)
        weights = ranks ** (-spec.zipf_s)
        weights /= weights.sum()
        methods = []
        for i in range(spec.methods):
            size = int(
                min(
                    max(
                        rng.lognormal(
                            math.log(spec.method_bytecode_bytes), 0.6
                        ),
                        40,
                    ),
                    16 * 1024,
                )
            )
            methods.append(
                JavaMethod(
                    name=f"{spec.name}.m{i}",
                    bytecode_bytes=size,
                    weight=float(weights[i]),
                )
            )
        self.method_table = MethodTable(methods)
        # Hot methods tend to be invoked early; colder ones later.
        order = rng.random(spec.methods) ** FIRST_TOUCH_EXPONENT
        hot_pull = weights / weights.max()
        self._method_touch = order * (1.0 - 0.6 * hot_pull)

    def _build_slices(self):
        spec = self.spec
        rng = self.rng
        n = self.n_slices

        # Allocation intensity profile across the run (mild phase shape).
        phase = 1.0 + 0.25 * np.sin(
            np.linspace(0.0, 2.0 * math.pi, n) + rng.random() * math.pi
        )
        phase /= phase.mean()

        bytecodes_per = spec.bytecodes / n
        jitter_sigma = 0.05 * spec.burstiness
        cpi_jitter = rng.lognormal(0.0, jitter_sigma, size=n)
        mix_jitter = np.clip(
            1.0 + 0.06 * spec.burstiness * rng.standard_normal(n),
            0.80,
            1.35,
        )

        # Assign first touches to slices.
        class_slices = np.minimum(
            (self._class_touch * n).astype(int), n - 1
        )
        method_slices = np.minimum(
            (self._method_touch * n).astype(int), n - 1
        )

        slices = []
        alloc_total = 0
        for i in range(n):
            alloc = int(spec.alloc_bytes * phase[i] / n)
            alloc_total += alloc
            slices.append(
                Slice(
                    index=i,
                    bytecodes=bytecodes_per,
                    alloc_bytes=alloc,
                    cpi_jitter=float(cpi_jitter[i]),
                    mix_jitter=float(mix_jitter[i]),
                )
            )
        # Fix rounding drift so total allocation matches the spec.
        slices[-1].alloc_bytes += spec.alloc_bytes - alloc_total

        for ci, si in enumerate(class_slices):
            slices[si].class_loads.append(self.classes[ci])
        for mi, si in enumerate(method_slices):
            slices[si].method_calls.append(self.method_table.methods[mi])

        # Tracked pointer mutations per slice.
        for s in slices:
            expected = spec.mutation_rate_per_mb * s.alloc_bytes / (1 << 20)
            s.mutations = int(rng.poisson(max(expected, 0.0)))
        self._slices = slices

    # -- VM interface ----------------------------------------------------

    @property
    def slices(self):
        return self._slices

    def draw_cohort(self, now):
        """Sample one allocation cohort: ``(size_bytes, death_clock)``."""
        size = self.spec.draw_cohort_size(self.rng)
        death = now + self.spec.draw_lifetime(self.rng)
        return size, death

    def draw_cohort_batch(self, now, alloc_bytes):
        """Vectorized cohort draw covering at least ``alloc_bytes``.

        Returns ``(sizes, deaths)`` as Python lists; sizes sum to at
        least ``alloc_bytes`` (the last cohort may overshoot slightly,
        as a real allocator's final request would).  Deaths are computed
        against the running allocation clock starting at ``now``.
        """
        spec = self.spec
        rng = self.rng
        if alloc_bytes <= 0:
            return [], []
        est = max(int(alloc_bytes / spec.cohort_bytes * 1.15) + 8, 8)
        while True:
            raw = rng.lognormal(math.log(spec.cohort_bytes), 0.45, size=est)
            sizes = np.clip(raw, 2 * 1024, 256 * 1024).astype(np.int64)
            cumulative = np.cumsum(sizes)
            if cumulative[-1] >= alloc_bytes:
                break
            est = int(est * 1.5) + 8
        count = int(np.searchsorted(cumulative, alloc_bytes)) + 1
        sizes = sizes[:count]
        cumulative = cumulative[:count]

        # Mixture lifetimes: immortal / young / mid.
        u = rng.random(count)
        lifetimes = np.where(
            u < spec.immortal_frac + spec.young_frac,
            rng.exponential(spec.young_mean_bytes, size=count),
            rng.exponential(spec.mid_mean_bytes(), size=count),
        )
        deaths = (now + cumulative - sizes) + lifetimes  # birth + lifetime
        deaths = deaths.astype(np.float64)
        deaths[u < spec.immortal_frac] = np.inf
        return sizes.tolist(), deaths.tolist()

    def mutation_target(self, candidates):
        """Pick which just-allocated object a tracked mutation stores.

        Real remembered-set entries disproportionately target objects
        being installed into long-lived structures; the spec's
        ``long_lived_mutation_bias`` selects the longest-lived candidate
        with that probability.
        """
        if not candidates:
            return None
        if self.rng.random() < self.spec.long_lived_mutation_bias:
            return max(candidates, key=lambda o: o.death)
        return candidates[int(self.rng.integers(0, len(candidates)))]

    def total_class_file_bytes(self):
        return sum(c.file_bytes for c in self.classes)
