"""Allocation-trace record and replay.

GC studies (including the JMTk work behind the paper's collectors)
standardly compare collectors on *identical* allocation streams.  The
default workload generator draws cohorts lazily from distributions, so
two runs with different collectors see the same stream only because
they consume the RNG identically; a recorded trace makes the guarantee
structural and lets a stream be saved, inspected, and replayed.

* :func:`record_trace` samples a benchmark's allocation behavior into
  an :class:`AllocationTrace` (sizes + lifetimes on the allocation
  clock);
* traces round-trip to ``.npz`` files;
* :class:`TraceWorkloadRun` is a drop-in workload whose cohorts replay
  the trace verbatim; VMs accept it directly via
  ``vm.run(trace_run.as_workload())`` semantics (pass the instance to
  ``run``).
"""

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import ConfigurationError
from repro.workloads.generator import WorkloadRun


@dataclass
class AllocationTrace:
    """A recorded allocation stream.

    ``sizes`` are cohort sizes in bytes; ``lifetimes`` are allocation-
    clock lifetimes (``inf`` for immortal cohorts).  Both arrays share
    one index order: the order of allocation.
    """

    benchmark: str
    sizes: np.ndarray
    lifetimes: np.ndarray

    def __post_init__(self):
        if len(self.sizes) != len(self.lifetimes):
            raise ConfigurationError(
                "sizes and lifetimes must be parallel arrays"
            )
        if len(self.sizes) == 0:
            raise ConfigurationError("empty allocation trace")

    @property
    def total_bytes(self):
        return int(self.sizes.sum())

    @property
    def cohort_count(self):
        return len(self.sizes)

    def live_profile(self, points=64):
        """Live bytes at evenly spaced allocation-clock positions —
        the classic 'heap occupancy over time' curve."""
        births = np.cumsum(self.sizes) - self.sizes
        deaths = births + self.lifetimes
        clocks = np.linspace(0, float(self.sizes.sum()), points)
        live = np.empty(points)
        for i, t in enumerate(clocks):
            mask = (births <= t) & (deaths > t)
            live[i] = self.sizes[mask].sum()
        return clocks, live

    def save(self, path):
        """Write the trace to an ``.npz`` file."""
        path = Path(path)
        np.savez_compressed(
            path,
            benchmark=np.array(self.benchmark),
            sizes=self.sizes,
            lifetimes=self.lifetimes,
        )
        return path if path.suffix == ".npz" else path.with_suffix(
            path.suffix + ".npz"
        )

    @classmethod
    def load(cls, path):
        """Load a trace written by :meth:`save`."""
        data = np.load(Path(path), allow_pickle=False)
        return cls(
            benchmark=str(data["benchmark"]),
            sizes=data["sizes"],
            lifetimes=data["lifetimes"],
        )


def record_trace(spec, seed=42, alloc_bytes=None):
    """Sample *spec*'s allocation behavior into a trace.

    By default records the benchmark's full allocation volume.
    """
    rng = np.random.default_rng(seed)
    run = WorkloadRun(spec, rng, n_slices=8)
    target = alloc_bytes or spec.alloc_bytes
    sizes, deaths = run.draw_cohort_batch(0.0, target)
    sizes = np.asarray(sizes, dtype=np.int64)
    births = np.cumsum(sizes) - sizes
    lifetimes = np.asarray(deaths, dtype=np.float64) - births
    return AllocationTrace(
        benchmark=spec.name, sizes=sizes, lifetimes=lifetimes
    )


class TraceWorkloadRun(WorkloadRun):
    """A workload whose allocation stream replays a recorded trace.

    Everything except the cohorts (classes, methods, slices) still
    comes from the spec + seed; the cohorts come from the trace, in
    order, regardless of how the consumer batches its requests — so
    two VMs replaying the same trace allocate byte-identical streams.
    """

    def __init__(self, spec, rng, trace, n_slices=160):
        if trace.total_bytes < spec.alloc_bytes * 0.99:
            raise ConfigurationError(
                "trace is shorter than the spec's allocation volume; "
                "record it with alloc_bytes >= spec.alloc_bytes"
            )
        super().__init__(spec, rng, n_slices=n_slices)
        self.trace = trace
        self._cursor = 0

    def draw_cohort_batch(self, now, alloc_bytes):
        if alloc_bytes <= 0:
            return [], []
        sizes = []
        deaths = []
        got = 0
        clock = now
        n = self.trace.cohort_count
        while got < alloc_bytes and self._cursor < n:
            size = int(self.trace.sizes[self._cursor])
            life = float(self.trace.lifetimes[self._cursor])
            sizes.append(size)
            deaths.append(clock + life)
            clock += size
            got += size
            self._cursor += 1
        if got < alloc_bytes:
            raise ConfigurationError(
                "allocation trace exhausted before the workload "
                "finished"
            )
        return sizes, deaths

    @property
    def replayed_bytes(self):
        """Bytes replayed from the trace so far."""
        return int(self.trace.sizes[: self._cursor].sum())
