"""Java Grande Forum sequential benchmark models (data set A).

Numeric kernels: mostly array-bound compute with small live sets and high
IPC — `moldyn` in particular is the kind of dense floating-point loop
whose *application* phases set the platform's peak power (Figure 8's
observation that peak power comes from the application, not the JVM
services).
"""

from repro.units import KB, MB
from repro.workloads.spec import BenchmarkSpec

JGF = (
    BenchmarkSpec(
        name="euler",
        suite="JGF",
        description="Benchmark on computational fluid dynamics",
        bytecodes=2.6e9,
        alloc_bytes=700 * MB,
        live_bytes=int(6.0 * MB),
        young_frac=0.97,
        young_mean_bytes=512 * KB,
        app_classes=25,
        methods=260,
        method_bytecode_bytes=850,
        app_overrides={
            "l1_miss_rate": 0.045,
            "locality": 0.80,
            "mix": 1.08,
        },
        immortal_frac=0.0015,
    ),
    BenchmarkSpec(
        name="moldyn",
        suite="JGF",
        description="A molecular dynamic simulator",
        bytecodes=3.0e9,
        alloc_bytes=80 * MB,
        live_bytes=int(3.0 * MB),
        young_frac=0.90,
        app_classes=20,
        methods=180,
        method_bytecode_bytes=780,
        app_overrides={
            "l1_miss_rate": 0.015,
            "locality": 0.95,
            "mix": 1.15,
        },
        burstiness=1.2,
        immortal_frac=0.010,
    ),
    BenchmarkSpec(
        name="raytracer",
        suite="JGF",
        description="A 3D raytracer",
        bytecodes=2.4e9,
        alloc_bytes=700 * MB,
        live_bytes=int(5.0 * MB),
        young_frac=0.92,
        app_classes=35,
        methods=300,
        app_overrides={"l1_miss_rate": 0.030, "mix": 1.05},
        immortal_frac=0.0015,
    ),
    BenchmarkSpec(
        name="search",
        suite="JGF",
        description="An Alpha-Beta prune search",
        bytecodes=1.8e9,
        alloc_bytes=250 * MB,
        live_bytes=int(2.5 * MB),
        young_frac=0.91,
        app_classes=15,
        methods=150,
        app_overrides={"l1_miss_rate": 0.025, "mix": 1.02},
        immortal_frac=0.004,
    ),
)
