"""Server-class workload models (paper Section VII future work).

"The present study has focused on client-based benchmarks; we hope to
analyze server-type workloads in our effort to study thermal behavior
of long-running applications."

Two synthetic server models are provided:

* ``jbb_like`` — a SPECjbb-style transaction server: a large resident
  warehouse working set, steady high-rate allocation of short-lived
  transaction objects, and long total runtime;
* ``webcache_like`` — an in-memory object cache: a big long-lived
  store with churn (entries expire on a mid-range timescale), giving
  the generational hypothesis a harder time.

They register under the ``Server`` suite, so
``all_benchmarks("Server")`` returns them without disturbing the
paper's sixteen-benchmark Figure 5 set.
"""

from repro.units import KB, MB
from repro.workloads.spec import BenchmarkSpec

SERVER = (
    BenchmarkSpec(
        name="jbb_like",
        suite="Server",
        description="SPECjbb-style transaction server (synthetic)",
        bytecodes=9.0e9,
        alloc_bytes=5000 * MB,
        live_bytes=int(14.0 * MB),
        young_frac=0.96,
        young_mean_bytes=192 * KB,
        immortal_frac=0.0015,
        app_classes=480,
        methods=3600,
        mutation_rate_per_mb=5.0,
        long_lived_mutation_bias=0.7,
        app_overrides={"l1_miss_rate": 0.055, "locality": 0.72},
        burstiness=0.8,
    ),
    BenchmarkSpec(
        name="webcache_like",
        suite="Server",
        description="In-memory object cache with mid-life churn "
                    "(synthetic)",
        bytecodes=7.0e9,
        alloc_bytes=3200 * MB,
        live_bytes=int(18.0 * MB),
        young_frac=0.80,
        young_mean_bytes=256 * KB,
        immortal_frac=0.0020,
        app_classes=260,
        methods=1900,
        mutation_rate_per_mb=8.0,
        long_lived_mutation_bias=0.85,
        app_overrides={
            "l1_miss_rate": 0.070,
            "locality": 0.62,
            "spatial": 0.65,
        },
        burstiness=0.9,
    ),
)
