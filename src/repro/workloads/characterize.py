"""Workload characterization tooling.

The benchmark models in this package are synthetic; their credibility
rests on being *inspectable*.  This module computes the memory-behavior
summary GC papers print for their workloads — allocation volume, live
curve, and nursery survival as a function of nursery size — directly
from a spec's distributions, so a reader can check each model against
the published characterizations it was calibrated to.

Exposed on the CLI as ``repro workload <name>``.
"""

from dataclasses import dataclass

import numpy as np

from repro.units import MB
from repro.workloads.alloctrace import record_trace


@dataclass
class WorkloadProfile:
    """Summary statistics of one benchmark model."""

    name: str
    suite: str
    alloc_mb: float
    cohorts: int
    live_mean_mb: float
    live_peak_mb: float
    survival_by_nursery_mb: dict   # nursery MB -> surviving fraction
    immortal_fraction: float
    classes: int
    methods: int

    def survival(self, nursery_mb):
        return self.survival_by_nursery_mb[nursery_mb]


def nursery_survival(trace, nursery_bytes):
    """Fraction of allocated bytes that would survive a nursery of the
    given size: cohorts whose lifetime exceeds the allocation slack
    left in their nursery generation.

    A cohort allocated when the nursery has ``r`` bytes of room dies in
    the nursery iff its lifetime is under ``r`` — the standard
    fixed-nursery survival estimate.
    """
    sizes = trace.sizes
    lifetimes = trace.lifetimes
    surviving = 0
    fill = 0
    for size, life in zip(sizes, lifetimes):
        if fill + size > nursery_bytes:
            fill = 0  # nursery collected
        room = nursery_bytes - fill
        if life > room:
            surviving += size
        fill += size
    return surviving / max(int(sizes.sum()), 1)


def characterize(spec, seed=42, sample_mb=None,
                 nursery_sizes_mb=(1, 2, 4, 8)):
    """Build a :class:`WorkloadProfile` for *spec* by sampling its
    allocation behavior (``sample_mb`` defaults to the smaller of the
    spec's volume and 256 MB, enough for stable statistics)."""
    cap = min(spec.alloc_bytes, 256 * MB)
    sample = int(sample_mb * MB) if sample_mb else cap
    trace = record_trace(spec, seed=seed, alloc_bytes=sample)
    _, live = trace.live_profile(points=96)
    survival = {
        n: nursery_survival(trace, n * MB) for n in nursery_sizes_mb
    }
    immortal = float(
        trace.sizes[~np.isfinite(trace.lifetimes)].sum()
        / max(int(trace.sizes.sum()), 1)
    )
    return WorkloadProfile(
        name=spec.name,
        suite=spec.suite,
        alloc_mb=spec.alloc_bytes / MB,
        cohorts=trace.cohort_count,
        live_mean_mb=float(live[len(live) // 4:].mean() / MB),
        live_peak_mb=float(live.max() / MB),
        survival_by_nursery_mb=survival,
        immortal_fraction=immortal,
        classes=spec.app_classes + spec.system_classes,
        methods=spec.methods,
    )


def render_profile(profile, spec=None):
    """Plain-text rendering of a workload profile."""
    lines = [
        f"{profile.name} [{profile.suite}]",
        f"  total allocation : {profile.alloc_mb:.0f} MB "
        f"({profile.cohorts} sampled cohorts)",
        f"  live set         : mean {profile.live_mean_mb:.1f} MB, "
        f"peak {profile.live_peak_mb:.1f} MB"
        + (
            f" (target {spec.live_bytes / MB:.1f} MB)"
            if spec is not None else ""
        ),
        f"  immortal bytes   : {100 * profile.immortal_fraction:.2f}%",
        f"  code             : {profile.classes} classes, "
        f"{profile.methods} methods",
        "  nursery survival :",
    ]
    for nursery_mb, frac in profile.survival_by_nursery_mb.items():
        lines.append(
            f"    {nursery_mb:3d} MB nursery -> {100 * frac:5.1f}% "
            "of bytes promoted"
        )
    return "\n".join(lines)
