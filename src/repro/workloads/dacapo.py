"""DaCapo (beta051009) benchmark models, default data sets.

The DaCapo programs are the memory-intensive half of the paper's mix;
``fop`` is the class-loading outlier (the paper measures its class loader
at 24 % of total energy — it parses a large XSL-FO input through an
enormous number of small classes relative to a short run).
"""

from repro.units import KB, MB
from repro.workloads.spec import BenchmarkSpec

DACAPO = (
    BenchmarkSpec(
        name="antlr",
        suite="DaCapo",
        description="A grammar parser generator",
        bytecodes=1.5e9,
        alloc_bytes=1300 * MB,
        live_bytes=int(5.0 * MB),
        young_frac=0.92,
        young_mean_bytes=384 * KB,
        app_classes=220,
        methods=1700,
        immortal_frac=0.001,
    ),
    BenchmarkSpec(
        name="fop",
        suite="DaCapo",
        description="Application that generates a PDF file from an "
                    "XSL-FO file",
        bytecodes=1.1e9,
        alloc_bytes=300 * MB,
        live_bytes=int(8.0 * MB),
        young_frac=0.85,
        young_mean_bytes=512 * KB,
        app_classes=2000,
        class_file_bytes=12 * KB,
        methods=9000,
        method_bytecode_bytes=340,
        mutation_rate_per_mb=4.0,
        immortal_frac=0.006,
    ),
    BenchmarkSpec(
        name="jython",
        suite="DaCapo",
        description="Python program interpreter",
        bytecodes=2.8e9,
        alloc_bytes=3500 * MB,
        live_bytes=int(6.0 * MB),
        young_frac=0.94,
        young_mean_bytes=256 * KB,
        app_classes=880,
        methods=6400,
        method_bytecode_bytes=420,
        immortal_frac=0.0004,
    ),
    BenchmarkSpec(
        name="pmd",
        suite="DaCapo",
        description="An analyzer for Java classes",
        bytecodes=2.2e9,
        alloc_bytes=1500 * MB,
        live_bytes=int(9.0 * MB),
        young_frac=0.89,
        young_mean_bytes=448 * KB,
        app_classes=620,
        methods=4300,
        mutation_rate_per_mb=4.0,
        app_overrides={"l1_miss_rate": 0.060},
        immortal_frac=0.0009,
    ),
    BenchmarkSpec(
        name="ps",
        suite="DaCapo",
        description="A Postscript file reader and interpreter",
        bytecodes=1.8e9,
        alloc_bytes=1800 * MB,
        live_bytes=int(5.0 * MB),
        young_frac=0.93,
        young_mean_bytes=320 * KB,
        app_classes=180,
        methods=1300,
        immortal_frac=0.0006,
    ),
)

#: Heap sizes for DaCapo sweeps start at 48 MB in the paper's figures.
DACAPO_MIN_HEAP_MB = 48
