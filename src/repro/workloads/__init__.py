"""Benchmark workload models.

The paper measures 16 benchmarks from three suites (its Figure 5):
seven from SpecJVM98, five from DaCapo (beta051009), and four sequential
Java Grande Forum codes.  Since the real benchmarks cannot run on a
simulated JVM, each is modeled by a :class:`~repro.workloads.spec.BenchmarkSpec`
capturing exactly the characteristics the paper's results depend on:
total bytecode volume, allocation volume and object lifetime structure,
live-set size, class and method counts, and the application's
microarchitectural character.

Use :func:`get_benchmark` / :func:`all_benchmarks` to access the registry.
"""

from repro.errors import ConfigurationError, UnknownBenchmarkError
from repro.registry import WORKLOADS as WORKLOAD_REGISTRY
from repro.registry import register_workload
from repro.workloads.dacapo import DACAPO
from repro.workloads.jgf import JGF
from repro.workloads.server import SERVER
from repro.workloads.spec import BenchmarkSpec
from repro.workloads.specjvm98 import SPECJVM98
from repro.workloads.generator import Slice, WorkloadRun

#: All benchmarks — the paper's sixteen (Figure 5 order) plus the
#: synthetic Server suite (Section VII future work) — registered into
#: the workload registry.  ``REGISTRY`` is a convenience name->spec
#: view; the registry itself is the source of truth, so specs added
#: through :func:`repro.registry.register_workload` are visible to
#: :func:`get_benchmark` without touching this module.
for _spec in (*SPECJVM98, *DACAPO, *JGF, *SERVER):
    register_workload(_spec.name, _spec, suite=_spec.suite,
                      description=_spec.description)

REGISTRY = {
    entry.name: entry.obj for entry in WORKLOAD_REGISTRY.entries()
}


def get_benchmark(name):
    """Look up a benchmark spec by its paper name (e.g. ``"_213_javac"``)."""
    try:
        return WORKLOAD_REGISTRY.get(name).obj
    except ConfigurationError:
        raise UnknownBenchmarkError(
            f"unknown benchmark {name!r}; known: "
            f"{WORKLOAD_REGISTRY.names()}"
        ) from None


def all_benchmarks(suite=None):
    """Benchmark specs by suite.

    With no argument, returns the paper's sixteen benchmarks
    (Figure 5).  Pass ``"SpecJVM98"``, ``"DaCapo"``, ``"JGF"``, or
    ``"Server"`` (the Section VII extension suite) to select one.
    """
    specs = [e.obj for e in WORKLOAD_REGISTRY.entries()]
    if suite is None:
        return [s for s in specs if s.suite in suite_names()]
    return [s for s in specs if s.suite == suite]


def suite_names():
    """The three suite names, in the paper's order."""
    return ("SpecJVM98", "DaCapo", "JGF")


__all__ = [
    "BenchmarkSpec",
    "REGISTRY",
    "Slice",
    "WorkloadRun",
    "all_benchmarks",
    "get_benchmark",
    "suite_names",
]
