"""Content-addressed on-disk store of simulation artifacts.

Artifacts are keyed by a stable SHA-256 hash over the *simulation-only*
subset of :class:`~repro.core.experiment.ExperimentConfig`
(:func:`repro.spec.canonical_sim_dict`) plus the package and artifact
schema versions: two cells that differ only in measurement knobs (DAQ
period today; HPM period/rotation as they grow axes) share one key and
therefore one recorded execution, while every simulation axis change
produces a new one.

The store follows the campaign cell cache's protocol exactly — gzip
pickle entries under two-hex-char shards, atomic writes (mkstemp +
``os.replace``), ``.prov`` provenance sidecars, corruption- and
staleness-tolerant reads, LRU pruning — so ``repro cache
stats|prune|lineage`` drives both stores with the same machinery.
"""

import gzip
import hashlib
import os
import pickle
import tempfile
from pathlib import Path

from repro.campaign.cache import (
    DEFAULT_ORPHAN_AGE_S,
    scan_entries,
    sweep_orphans,
)

#: Bump when stored artifact payloads become incompatible with current
#: code (the payload schema tag guards the layout; this version guards
#: the *numeric* identity of what a simulation produces).
ARTIFACT_VERSION = 1

#: Environment variable overriding the default artifact store root.
ARTIFACT_DIR_ENV = "REPRO_ARTIFACT_DIR"

#: Artifact entry suffix (the store's only payload kind).
ARTIFACT_SUFFIXES = (".pkl.gz",)


def default_artifact_dir():
    """The store root: ``$REPRO_ARTIFACT_DIR`` or ``~/.cache/repro``."""
    env = os.environ.get(ARTIFACT_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "artifacts"


def sim_key(config):
    """Stable content hash of a config's simulation identity.

    Covers :func:`repro.spec.canonical_sim_dict` (every field that
    shapes the simulated execution, none that only shapes measurement)
    plus the package version and artifact schema version.  Strict
    serialization, same as the cell cache key: a value outside the
    canonical JSON types raises instead of being type-erased.
    """
    from repro import __version__
    from repro.spec import canonical_sim_dict, strict_canonical_json

    payload = {
        "sim": canonical_sim_dict(config),
        "repro_version": __version__,
        "artifact_version": ARTIFACT_VERSION,
    }
    canonical = strict_canonical_json(payload, what="simulation config")
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ArtifactStore:
    """Directory-backed map from sim-keys to simulation artifacts."""

    #: See :attr:`repro.campaign.cache.ResultCache._CORRUPTION_ERRORS` —
    #: the same split between "file damaged" and "payload stale".
    _CORRUPTION_ERRORS = (OSError, EOFError, pickle.UnpicklingError)

    def __init__(self, root=None):
        self.root = (
            Path(root) if root is not None else default_artifact_dir()
        )
        self.hits = 0
        self.misses = 0
        self.stale_evictions = 0

    # -- paths ----------------------------------------------------------

    def path_for_key(self, key):
        return self.root / key[:2] / f"{key}.pkl.gz"

    def path_for(self, config):
        return self.path_for_key(sim_key(config))

    # -- lookup ---------------------------------------------------------

    def get(self, config):
        """Stored artifact for *config*'s sim-key, or ``None``.

        Unreadable entries count as misses and are evicted — a damaged
        or stale artifact must trigger a re-simulation, never crash a
        campaign.  An artifact whose recorded ``sim_key`` disagrees
        with its filename key is treated the same way (a moved or
        hand-edited store must not serve wrong executions).
        """
        key = sim_key(config)
        return self.get_key(key)

    def get_key(self, key):
        """Stored artifact under *key*, or ``None`` (evicts bad entries)."""
        from repro.core.simulation import SimulationArtifact

        path = self.path_for_key(key)
        try:
            with gzip.open(path, "rb") as handle:
                payload = pickle.load(handle)
            artifact = SimulationArtifact.from_payload(payload)
            if artifact.sim_key != key:
                raise pickle.UnpicklingError(
                    f"artifact key mismatch: stored {artifact.sim_key}"
                )
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception as exc:  # noqa: BLE001 - anything load raises
            self.misses += 1
            if not isinstance(exc, self._CORRUPTION_ERRORS):
                self.stale_evictions += 1
            try:
                path.unlink()
            except OSError:
                pass
            from repro.provenance import remove_envelope

            remove_envelope(path)
            return None
        self.hits += 1
        try:
            os.utime(path)  # mark recently-used for LRU pruning
        except OSError:
            pass
        return artifact

    def put(self, config, artifact):
        """Store *artifact* under *config*'s sim-key atomically, with a
        provenance envelope recording the producing code."""
        from repro.provenance import build_envelope, write_envelope

        key = sim_key(config)
        path = self.path_for_key(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as raw:
                with gzip.open(raw, "wb") as handle:
                    pickle.dump(artifact.to_payload(), handle,
                                protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        write_envelope(path, build_envelope(
            "artifact", key,
            platform=artifact.platform_name,
            benchmark=artifact.benchmark,
            n_segments=artifact.n_segments,
        ))
        return path

    # -- bookkeeping (protocol shared with ResultCache) -----------------

    def __contains__(self, config):
        return self.path_for(config).exists()

    def __len__(self):
        return len(scan_entries(self.root, ARTIFACT_SUFFIXES))

    @property
    def hit_rate(self):
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def total_bytes(self):
        return sum(
            size
            for _, size, _ in scan_entries(self.root, ARTIFACT_SUFFIXES)
        )

    def stats(self):
        """On-disk shape of the store: entry count, bytes, age span."""
        entries = scan_entries(self.root, ARTIFACT_SUFFIXES)
        mtimes = [mtime for _, _, mtime in entries]
        return {
            "root": str(self.root),
            "entries": len(entries),
            "total_bytes": sum(size for _, size, _ in entries),
            "oldest_mtime": min(mtimes) if mtimes else None,
            "newest_mtime": max(mtimes) if mtimes else None,
        }

    def prune(self, max_bytes, orphan_age_s=DEFAULT_ORPHAN_AGE_S):
        """LRU-evict until the store fits *max_bytes*; sweeps orphan
        temp files and stranded envelopes like the cell cache."""
        from repro.campaign.cache import prune_lru
        from repro.provenance import sweep_orphan_envelopes

        sweep_orphans(self.root, max_age_s=orphan_age_s)
        removed = prune_lru(self.root, max_bytes, ARTIFACT_SUFFIXES)
        sweep_orphan_envelopes(self.root, max_age_s=orphan_age_s)
        return removed

    def prune_stale(self):
        """Evict artifacts from a different code version."""
        from repro.provenance import prune_stale

        return prune_stale(self.root, ARTIFACT_SUFFIXES)

    def lineage(self):
        """Artifacts grouped by producing code digest / version."""
        from repro.provenance import lineage

        return lineage(self.root, ARTIFACT_SUFFIXES)

    def clear(self):
        """Delete every stored artifact (and its envelope)."""
        from repro.provenance import remove_envelope

        removed = 0
        for entry, _, _ in scan_entries(self.root, ARTIFACT_SUFFIXES):
            try:
                entry.unlink()
            except OSError:
                continue
            remove_envelope(entry)
            removed += 1
        return removed


__all__ = [
    "ARTIFACT_DIR_ENV",
    "ARTIFACT_VERSION",
    "ArtifactStore",
    "default_artifact_dir",
    "sim_key",
]
