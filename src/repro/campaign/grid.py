"""Sweep-grid expansion: a declarative campaign into experiment cells.

A :class:`CampaignConfig` names the axes of a result matrix the way the
paper's experimental section does ("all benchmarks, on both VMs, at
every heap size on the ladder"); :func:`expand_grid` turns it into the
concrete, deterministic list of
:class:`~repro.core.experiment.ExperimentConfig` cells.  Expansion
skips combinations the VMs cannot run (a Jikes-only collector under
Kaffe and vice versa), mirroring how the original study simply had no
such column in its tables.  Which VM supports which collector is a
registry query (:func:`repro.registry.collector_supported`), so
registered extension VMs and collectors participate automatically.

Beyond the paper's axes, campaigns can sweep input scale, DAQ sampling
period, and DVFS operating point (``input_scales`` /
``daq_periods_s`` / ``dvfs_freq_scales``); the scalar fields remain as
single-value conveniences.
"""

import hashlib
from dataclasses import dataclass
from itertools import product
from typing import Optional

from repro.core.experiment import ExperimentConfig
from repro.errors import ConfigurationError
from repro.hardware.platform import validate_overrides
from repro.measurement.multiplexing import resolve_rotation
from repro.registry import collector_supported
from repro.units import DAQ_SAMPLE_PERIOD_S

#: Newest seed-derivation schema :func:`derive_cell_seed` implements.
#: Version 1 hashes the legacy axes only; version 2 (the scenario-spec
#: default) extends the identity with input scale, DAQ period, DVFS
#: point, and hardware overrides.  Recorded in provenance envelopes
#: (:mod:`repro.provenance`) so a stored result remembers which
#: derivation rules produced its cells.
SEED_DERIVATION_VERSION = 2

__all__ = [
    "CampaignConfig",
    "SEED_DERIVATION_VERSION",
    "collector_supported",
    "derive_cell_seed",
    "expand_grid",
]


def derive_cell_seed(base_seed, benchmark, vm, platform, collector,
                     heap_mb, input_scale=1.0,
                     daq_period_s=DAQ_SAMPLE_PERIOD_S,
                     dvfs_freq_scale=None, overrides=(),
                     hpm_period_s=None, hpm_rotation=None,
                     spec_version=1):
    """Stable per-cell seed derived from the cell's identity.

    Unlike seeding by grid position, adding or removing axis values
    never shifts the seed of an unrelated cell, so previously cached
    results stay valid as a campaign grows.

    ``spec_version`` gates the identity: version 1 reproduces the
    historical hash over (seed, benchmark, vm, platform, collector,
    heap) so existing cache entries keep their keys; version 2 (the
    scenario-spec default) extends it with the newly sweepable axes —
    input scale, DAQ period, DVFS point, hardware overrides — so cells
    differing only in those never share a derived seed.  The HPM
    measurement axes (``hpm_period_s``/``hpm_rotation``) joined v2
    later, so their parts are appended only away from their ``None``
    defaults — cells that don't sweep them keep their existing derived
    seeds.
    """
    parts = [
        str(base_seed), benchmark, vm, platform, str(collector),
        str(heap_mb),
    ]
    if spec_version >= 2:
        parts += [
            repr(float(input_scale)),
            repr(float(daq_period_s)),
            repr(None if dvfs_freq_scale is None
                 else float(dvfs_freq_scale)),
            repr(tuple(overrides)),
        ]
        if hpm_period_s is not None:
            parts.append("hpm_period_s=" + repr(float(hpm_period_s)))
        if hpm_rotation is not None:
            parts.append(
                "hpm_rotation="
                + repr(tuple(tuple(g) for g in hpm_rotation))
            )
    digest = hashlib.sha256("|".join(parts).encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big")


@dataclass(frozen=True)
class CampaignConfig:
    """Declarative description of an experiment matrix.

    Every sequence-valued axis is normalized to a tuple so configs are
    hashable and order-stable; the cross product of all axes (minus
    VM/collector combinations that cannot run) is the campaign's cell
    list.  The plural axes ``input_scales``/``daq_periods_s``/
    ``dvfs_freq_scales`` default to wrapping their scalar counterparts,
    which stay for backwards compatibility.
    """

    benchmarks: tuple
    vms: tuple = ("jikes",)
    platforms: tuple = ("p6",)
    collectors: tuple = (None,)
    heap_mbs: tuple = (64,)
    seeds: tuple = (42,)
    input_scale: float = 1.0
    warmup: bool = True
    repetitions: int = 1
    fan_enabled: bool = True
    n_slices: int = 160
    daq_period_s: float = DAQ_SAMPLE_PERIOD_S
    dvfs_freq_scale: Optional[float] = None
    #: Measurement-side HPM knobs (``None`` = platform default period /
    #: single-pass sampler); sweepable via the plural axes below.
    hpm_period_s: Optional[float] = None
    hpm_rotation: Optional[tuple] = None
    #: Derive a unique, stable seed per cell from each base seed instead
    #: of running every cell with the base seed itself.
    derive_seeds: bool = False
    #: Sweepable counterparts of the scalar fields above (``None`` =
    #: sweep just the scalar's value).
    input_scales: Optional[tuple] = None
    daq_periods_s: Optional[tuple] = None
    dvfs_freq_scales: Optional[tuple] = None
    hpm_periods_s: Optional[tuple] = None
    hpm_rotations: Optional[tuple] = None
    #: Hardware-constant overrides applied to every cell's platform
    #: (canonical tuple of pairs; see
    #: :data:`repro.hardware.platform.SUPPORTED_OVERRIDES`).
    overrides: tuple = ()
    #: Scenario-spec schema version; gates :func:`derive_cell_seed`
    #: identity (1 = legacy axes only, 2 = full cell identity).
    spec_version: int = 1

    def __post_init__(self):
        for axis in ("benchmarks", "vms", "platforms", "collectors",
                     "heap_mbs", "seeds"):
            value = getattr(self, axis)
            if isinstance(value, (str, int)) or value is None:
                value = (value,)
            value = tuple(value)
            if not value:
                raise ConfigurationError(f"{axis} cannot be empty")
            object.__setattr__(self, axis, value)
        for axis, scalar in (("input_scales", self.input_scale),
                             ("daq_periods_s", self.daq_period_s),
                             ("dvfs_freq_scales", self.dvfs_freq_scale),
                             ("hpm_periods_s", self.hpm_period_s)):
            value = getattr(self, axis)
            if value is None:
                value = (scalar,)
            elif isinstance(value, (int, float)):
                value = (value,)
            value = tuple(value)
            if not value:
                raise ConfigurationError(f"{axis} cannot be empty")
            object.__setattr__(self, axis, value)
        # The rotation axis can't share the loop above: a rotation value
        # is itself a tuple (of event groups), so tuple(value) would
        # shred a bare schedule into its groups.  Only None (wrap the
        # scalar) and explicit sequences of rotation values are
        # accepted; each value canonicalizes through resolve_rotation.
        rotations = self.hpm_rotations
        if rotations is None:
            rotations = (self.hpm_rotation,)
        rotations = tuple(resolve_rotation(r) for r in rotations)
        if not rotations:
            raise ConfigurationError("hpm_rotations cannot be empty")
        object.__setattr__(self, "hpm_rotations", rotations)
        object.__setattr__(
            self, "hpm_rotation", resolve_rotation(self.hpm_rotation)
        )
        object.__setattr__(
            self, "overrides", validate_overrides(self.overrides)
        )
        if self.spec_version not in (1, 2):
            raise ConfigurationError(
                f"unknown spec_version {self.spec_version!r} "
                "(supported: 1, 2)"
            )

    @property
    def n_cells(self):
        return len(self.cells())

    def cells(self):
        """The campaign's :class:`ExperimentConfig` cells, in grid order."""
        return expand_grid(self)


def expand_grid(campaign):
    """Expand *campaign* into a list of :class:`ExperimentConfig` cells.

    Iteration order is the deterministic cross product
    (benchmark, vm, platform, collector, heap, seed, input scale, DAQ
    period, DVFS point); unsupported VM/collector pairs are skipped.
    """
    cells = []
    for (bench, vm, platform, collector, heap, seed, input_scale,
         daq_period, dvfs, hpm_period, hpm_rotation) in product(
        campaign.benchmarks, campaign.vms, campaign.platforms,
        campaign.collectors, campaign.heap_mbs, campaign.seeds,
        campaign.input_scales, campaign.daq_periods_s,
        campaign.dvfs_freq_scales, campaign.hpm_periods_s,
        campaign.hpm_rotations,
    ):
        if not collector_supported(vm, collector):
            continue
        if campaign.derive_seeds:
            seed = derive_cell_seed(
                seed, bench, vm, platform, collector, heap,
                input_scale=input_scale, daq_period_s=daq_period,
                dvfs_freq_scale=dvfs, overrides=campaign.overrides,
                hpm_period_s=hpm_period, hpm_rotation=hpm_rotation,
                spec_version=campaign.spec_version,
            )
        cells.append(ExperimentConfig(
            benchmark=bench,
            vm=vm,
            platform=platform,
            collector=collector,
            heap_mb=heap,
            seed=seed,
            input_scale=input_scale,
            warmup=campaign.warmup,
            repetitions=campaign.repetitions,
            fan_enabled=campaign.fan_enabled,
            n_slices=campaign.n_slices,
            daq_period_s=daq_period,
            dvfs_freq_scale=dvfs,
            overrides=campaign.overrides,
            hpm_period_s=hpm_period,
            hpm_rotation=hpm_rotation,
        ))
    if not cells:
        raise ConfigurationError(
            "campaign expands to zero runnable cells (every "
            "VM/collector combination was unsupported)"
        )
    return cells
