"""Sweep-grid expansion: a declarative campaign into experiment cells.

A :class:`CampaignConfig` names the axes of a result matrix the way the
paper's experimental section does ("all benchmarks, on both VMs, at
every heap size on the ladder"); :func:`expand_grid` turns it into the
concrete, deterministic list of
:class:`~repro.core.experiment.ExperimentConfig` cells.  Expansion
skips combinations the VMs cannot run (a Jikes-only collector under
Kaffe and vice versa), mirroring how the original study simply had no
such column in its tables.
"""

import hashlib
from dataclasses import dataclass
from itertools import product
from typing import Optional

from repro.core.experiment import ExperimentConfig
from repro.errors import ConfigurationError
from repro.units import DAQ_SAMPLE_PERIOD_S

#: Collector -> VMs that implement it.  ``None`` (VM default) fits all.
_COLLECTOR_VMS = {
    "SemiSpace": ("jikes",),
    "MarkSweep": ("jikes",),
    "GenCopy": ("jikes",),
    "GenMS": ("jikes",),
    "KaffeGC": ("kaffe",),
}


def collector_supported(vm, collector):
    """Whether *vm* implements *collector* (``None`` = VM default)."""
    if collector is None:
        return True
    vms = _COLLECTOR_VMS.get(collector)
    return vms is None or vm in vms


def derive_cell_seed(base_seed, benchmark, vm, platform, collector,
                     heap_mb):
    """Stable per-cell seed derived from the cell's identity.

    Unlike seeding by grid position, adding or removing axis values
    never shifts the seed of an unrelated cell, so previously cached
    results stay valid as a campaign grows.
    """
    ident = "|".join([
        str(base_seed), benchmark, vm, platform, str(collector),
        str(heap_mb),
    ])
    digest = hashlib.sha256(ident.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big")


@dataclass(frozen=True)
class CampaignConfig:
    """Declarative description of an experiment matrix.

    Every sequence-valued axis is normalized to a tuple so configs are
    hashable and order-stable; the cross product of all axes (minus
    VM/collector combinations that cannot run) is the campaign's cell
    list.
    """

    benchmarks: tuple
    vms: tuple = ("jikes",)
    platforms: tuple = ("p6",)
    collectors: tuple = (None,)
    heap_mbs: tuple = (64,)
    seeds: tuple = (42,)
    input_scale: float = 1.0
    warmup: bool = True
    repetitions: int = 1
    fan_enabled: bool = True
    n_slices: int = 160
    daq_period_s: float = DAQ_SAMPLE_PERIOD_S
    dvfs_freq_scale: Optional[float] = None
    #: Derive a unique, stable seed per cell from each base seed instead
    #: of running every cell with the base seed itself.
    derive_seeds: bool = False

    def __post_init__(self):
        for axis in ("benchmarks", "vms", "platforms", "collectors",
                     "heap_mbs", "seeds"):
            value = getattr(self, axis)
            if isinstance(value, (str, int)) or value is None:
                value = (value,)
            value = tuple(value)
            if not value:
                raise ConfigurationError(f"{axis} cannot be empty")
            object.__setattr__(self, axis, value)

    @property
    def n_cells(self):
        return len(self.cells())

    def cells(self):
        """The campaign's :class:`ExperimentConfig` cells, in grid order."""
        return expand_grid(self)


def expand_grid(campaign):
    """Expand *campaign* into a list of :class:`ExperimentConfig` cells.

    Iteration order is the deterministic cross product
    (benchmark, vm, platform, collector, heap, seed); unsupported
    VM/collector pairs are skipped.
    """
    cells = []
    for bench, vm, platform, collector, heap, seed in product(
        campaign.benchmarks, campaign.vms, campaign.platforms,
        campaign.collectors, campaign.heap_mbs, campaign.seeds,
    ):
        if not collector_supported(vm, collector):
            continue
        if campaign.derive_seeds:
            seed = derive_cell_seed(seed, bench, vm, platform,
                                    collector, heap)
        cells.append(ExperimentConfig(
            benchmark=bench,
            vm=vm,
            platform=platform,
            collector=collector,
            heap_mb=heap,
            seed=seed,
            input_scale=campaign.input_scale,
            warmup=campaign.warmup,
            repetitions=campaign.repetitions,
            fan_enabled=campaign.fan_enabled,
            n_slices=campaign.n_slices,
            daq_period_s=campaign.daq_period_s,
            dvfs_freq_scale=campaign.dvfs_freq_scale,
        ))
    if not cells:
        raise ConfigurationError(
            "campaign expands to zero runnable cells (every "
            "VM/collector combination was unsupported)"
        )
    return cells
