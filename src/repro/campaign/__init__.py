"""Campaign subsystem: parallel, cached experiment matrices.

The paper's results come from a *matrix* of runs (benchmarks x VMs x
platforms x heap sizes x collectors); this package turns a declarative
:class:`CampaignConfig` into individual
:class:`~repro.core.experiment.ExperimentConfig` cells, executes them on
a process pool with per-cell timeout, bounded retry and graceful
degradation, and memoizes each cell's summary in a content-addressed
on-disk cache so repeated figure/benchmark runs only pay for new cells.

Quickstart::

    from repro.campaign import CampaignConfig, CampaignRunner

    campaign = CampaignConfig(
        benchmarks=("_202_jess", "_209_db"),
        collectors=("SemiSpace", "GenCopy"),
        heap_mbs=(32, 64),
    )
    outcome = CampaignRunner(workers=4, cache_dir=".repro-cache")
    result = outcome.run(campaign)
    print(result.summary.describe())
"""

from repro.campaign.artifacts import ArtifactStore, sim_key
from repro.campaign.cache import ResultCache, config_key
from repro.campaign.grid import (
    CampaignConfig,
    derive_cell_seed,
    expand_grid,
)
from repro.campaign.runner import (
    CampaignResult,
    CampaignRunner,
    CampaignSummary,
    CellResult,
    run_campaign,
)

__all__ = [
    "ArtifactStore",
    "CampaignConfig",
    "CampaignResult",
    "CampaignRunner",
    "CampaignSummary",
    "CellResult",
    "ResultCache",
    "config_key",
    "derive_cell_seed",
    "expand_grid",
    "run_campaign",
    "sim_key",
]
