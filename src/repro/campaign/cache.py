"""Content-addressed on-disk cache of per-cell results.

Cells are keyed by a stable SHA-256 hash over the *complete*
:class:`~repro.core.experiment.ExperimentConfig` plus a cache schema
version: two configs that would simulate identically share a key, and
any config field that affects the simulation changes it.  Entries are
written atomically (tmp file + ``os.replace``) so concurrent campaign
workers and interrupted runs can never leave a half-written cell
behind.

Invalidation rules: bump :data:`CACHE_VERSION` whenever the simulator's
numeric behavior changes (the package version is also part of the key),
or simply delete the cache directory — every entry is derivable by
re-running its cell.
"""

import gzip
import hashlib
import json
import os
import pickle
import tempfile
import time
from pathlib import Path

#: Suffixes that mark real, completed entries.  Everything else under a
#: store root — ``mkstemp`` temporaries from a crashed writer, lease
#: files from the serving layer — is bookkeeping, not payload, and must
#: never be counted by ``stats()`` or raced mid-write by ``prune_lru``.
ENTRY_SUFFIXES = (".pkl.gz", ".json")

#: Orphaned ``.tmp`` files younger than this are presumed to belong to
#: a live writer and are left alone by :func:`sweep_orphans`.
DEFAULT_ORPHAN_AGE_S = 3600.0


def scan_entries(root, suffixes=ENTRY_SUFFIXES):
    """All real entry files under *root* as ``(path, size, mtime)``.

    Only files matching *suffixes* count: temp files, leases, and any
    other stray bookkeeping are invisible to size accounting and LRU
    pruning.  Entries that vanish mid-scan (a concurrent prune or
    clear) are skipped rather than raised.  The walk is recursive so
    sharded layouts (``shard-NN/ab/<hash>.json``) scan the same way as
    flat ones (``ab/<hash>.json``).
    """
    root = Path(root)
    if not root.exists():
        return []
    out = []
    for suffix in suffixes:
        for path in root.rglob(f"*{suffix}"):
            try:
                stat = path.stat()
            except OSError:
                continue
            if path.is_file() and not path.name.endswith(".tmp"):
                out.append((path, stat.st_size, stat.st_mtime))
    return out


def sweep_orphans(root, max_age_s=DEFAULT_ORPHAN_AGE_S,
                  patterns=("*.tmp",)):
    """Delete orphaned scratch files older than *max_age_s*.

    A writer that crashes between ``mkstemp`` and ``os.replace`` leaves
    a ``.tmp`` file behind forever — it is never an entry, so no cache
    operation will ever remove it.  The sweep is age-gated: files
    younger than *max_age_s* may belong to a writer that is mid-write
    right now and are left alone.  Returns ``(n_removed,
    bytes_removed)``.
    """
    root = Path(root)
    if not root.exists():
        return 0, 0
    cutoff = time.time() - max_age_s
    n_removed = 0
    bytes_removed = 0
    for pattern in patterns:
        for path in root.rglob(pattern):
            try:
                stat = path.stat()
            except OSError:
                continue
            if not path.is_file() or stat.st_mtime > cutoff:
                continue
            try:
                path.unlink()
            except OSError:
                continue
            n_removed += 1
            bytes_removed += stat.st_size
    return n_removed, bytes_removed


def prune_lru(root, max_bytes, suffixes=ENTRY_SUFFIXES):
    """Delete least-recently-used entries until *root* fits *max_bytes*.

    Recency is mtime: readers are expected to ``os.utime`` entries they
    serve (both :class:`ResultCache` and the serve-layer result store
    do), so "least recently used" really means least recently *read or
    written*, not just oldest.  Returns ``(n_removed, bytes_removed)``.
    """
    if max_bytes < 0:
        raise ValueError("max_bytes cannot be negative")
    from repro.provenance import remove_envelope

    entries = scan_entries(root, suffixes=suffixes)
    total = sum(size for _, size, _ in entries)
    n_removed = 0
    bytes_removed = 0
    # Oldest first; stop as soon as the directory fits.
    for path, size, _ in sorted(entries, key=lambda e: e[2]):
        if total <= max_bytes:
            break
        try:
            path.unlink()
        except OSError:
            continue
        remove_envelope(path)  # the sidecar goes with its entry
        total -= size
        n_removed += 1
        bytes_removed += size
    return n_removed, bytes_removed

#: Bump when cached payloads become incompatible with current code.
CACHE_VERSION = 1

#: Environment variable overriding the default cache root.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir():
    """The cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "campaign"


def config_key(config):
    """Stable content hash of an :class:`ExperimentConfig`.

    The key covers every config field (sorted, canonical JSON) plus the
    package version and cache schema version, so simulator upgrades
    never resurface stale cells.  Canonicalization is shared with the
    scenario layer (:func:`repro.spec.canonical_experiment_dict`):
    fields introduced after the v1 schema are omitted while they hold
    their defaults, so configs predating them keep their historical
    keys, and a scenario spec's hash and its cells' cache keys derive
    from the same identity.

    Keys are load-bearing (provenance envelopes record them), so the
    serialization is strict: a config value outside the canonical JSON
    types raises a clear error instead of being silently type-erased
    through ``str()`` — two distinct objects must never share a key
    because their string forms happened to collide.
    """
    from repro import __version__
    from repro.spec import canonical_experiment_dict, strict_canonical_json

    payload = {
        "config": canonical_experiment_dict(config),
        "repro_version": __version__,
        "cache_version": CACHE_VERSION,
    }
    canonical = strict_canonical_json(payload, what="experiment config")
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultCache:
    """Directory-backed map from experiment configs to cell payloads."""

    #: Exception classes that mean "the file itself is damaged", as
    #: opposed to "the pickle is fine but was written by code whose
    #: classes no longer unpickle here" (renamed/moved attributes raise
    #: ``AttributeError``/``ModuleNotFoundError``, schema growth can
    #: raise ``TypeError``/``KeyError``...).  Both evict and count as a
    #: miss; only the latter counts in :attr:`stale_evictions`.
    _CORRUPTION_ERRORS = (OSError, EOFError, pickle.UnpicklingError)

    def __init__(self, root=None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        #: Entries evicted because unpickling raised a code-mismatch
        #: error (stale payload from an older code version), not plain
        #: file corruption.
        self.stale_evictions = 0

    def path_for(self, config):
        key = config_key(config)
        return self.root / key[:2] / f"{key}.pkl.gz"

    def get(self, config):
        """Cached payload for *config*, or ``None``.

        Unreadable entries count as misses and are removed so the
        campaign re-runs the cell instead of failing — whether the file
        is corrupt (truncated gzip, bad pickle stream) or merely stale
        (written by an older code version whose classes no longer
        unpickle: ``AttributeError``/``ModuleNotFoundError`` and
        friends).  A thousand-cell campaign must never crash on one
        bad cache file.
        """
        path = self.path_for(config)
        try:
            with gzip.open(path, "rb") as handle:
                payload = pickle.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception as exc:  # noqa: BLE001 - anything unpickling raises
            self.misses += 1
            if not isinstance(exc, self._CORRUPTION_ERRORS):
                self.stale_evictions += 1
            try:
                path.unlink()
            except OSError:
                pass
            from repro.provenance import remove_envelope

            remove_envelope(path)
            return None
        self.hits += 1
        try:
            os.utime(path)  # mark recently-used for LRU pruning
        except OSError:
            pass
        return payload

    def put(self, config, payload):
        """Store *payload* for *config* atomically, with a provenance
        envelope beside it recording which code produced the bytes
        (package version, cache schema, seed derivation, code digest —
        see :mod:`repro.provenance`)."""
        from repro.provenance import build_envelope, write_envelope

        path = self.path_for(config)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as raw:
                with gzip.open(raw, "wb") as handle:
                    pickle.dump(payload, handle,
                                protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        write_envelope(path, build_envelope("cell", path.name.split(".")[0]))
        return path

    def __contains__(self, config):
        return self.path_for(config).exists()

    def __len__(self):
        # Same recursive, suffix-based scan as stats()/total_bytes()/
        # prune(): counts must agree no matter how entries are nested.
        return len(scan_entries(self.root, (".pkl.gz",)))

    @property
    def hit_rate(self):
        """Fraction of lookups served from disk this session."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def total_bytes(self):
        """Bytes on disk across every entry under this root."""
        return sum(
            size for _, size, _ in scan_entries(self.root, (".pkl.gz",))
        )

    def stats(self):
        """On-disk shape of the cache: entry count, bytes, age span."""
        entries = scan_entries(self.root, (".pkl.gz",))
        mtimes = [mtime for _, _, mtime in entries]
        return {
            "root": str(self.root),
            "entries": len(entries),
            "total_bytes": sum(size for _, size, _ in entries),
            "oldest_mtime": min(mtimes) if mtimes else None,
            "newest_mtime": max(mtimes) if mtimes else None,
        }

    def prune(self, max_bytes, orphan_age_s=DEFAULT_ORPHAN_AGE_S):
        """Evict least-recently-used entries until the cache fits
        *max_bytes* on disk; returns ``(n_removed, bytes_removed)``.

        Also sweeps aged-out orphan ``.tmp`` files from crashed
        writers (they are not entries, so nothing else ever deletes
        them) and ``.prov`` envelope sidecars whose entry is gone.  A
        long-running service (``repro serve``) calls this
        periodically; the CLI exposes it as ``repro cache prune``.
        """
        from repro.provenance import sweep_orphan_envelopes

        sweep_orphans(self.root, max_age_s=orphan_age_s)
        removed = prune_lru(self.root, max_bytes, (".pkl.gz",))
        sweep_orphan_envelopes(self.root, max_age_s=orphan_age_s)
        return removed

    def prune_stale(self):
        """Evict entries written by a different code version (stale or
        missing provenance envelope); ``repro cache prune --stale``.
        Returns ``(n_removed, bytes_removed)``."""
        from repro.provenance import prune_stale

        return prune_stale(self.root, (".pkl.gz",))

    def lineage(self):
        """Entries grouped by producing code digest / engine version
        (see :func:`repro.provenance.lineage`)."""
        from repro.provenance import lineage

        return lineage(self.root, (".pkl.gz",))

    def clear(self):
        """Delete every cached cell (and its envelope) under this
        root — the same recursive scan as ``len()``/``stats()``, so a
        nested layout cannot strand entries."""
        from repro.provenance import remove_envelope

        removed = 0
        for entry, _, _ in scan_entries(self.root, (".pkl.gz",)):
            try:
                entry.unlink()
            except OSError:
                continue
            remove_envelope(entry)
            removed += 1
        return removed
