"""Multiprocess campaign executor with caching and graceful degradation.

The runner takes the expanded cell list and drives it to completion:

* cells whose payload is already in the on-disk cache are served
  without simulating anything;
* the rest run on a ``concurrent.futures.ProcessPoolExecutor`` (or
  in-process when ``workers <= 1``), each under a per-cell wall-clock
  budget enforced *inside* the worker with an interval timer, with a
  bounded number of retries;
* a cell that still fails records a structured error entry and the
  campaign continues — one poisoned configuration cannot abort a
  thousand-cell matrix;
* per-cell wall time, cache hit rate and worker throughput are folded
  into a machine-readable :class:`CampaignSummary`.

Determinism: a cell's result depends only on its
:class:`~repro.core.experiment.ExperimentConfig` (the simulator is
seeded, and measurement RNGs derive from the cell seed), so the same
campaign produces bit-identical per-cell payloads whether it runs
serially, on two workers, or from cache.
"""

import signal
import threading
import time
import traceback
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.campaign.cache import ResultCache
from repro.campaign.grid import CampaignConfig
from repro.errors import (
    CampaignError,
    CellTimeoutError,
    OutOfMemoryError,
)
from repro.obs import NULL_OBS


def _execute_cell(config, timeout_s, trace_path=None):
    """Worker entry point: run one cell, return a plain-dict outcome.

    Everything that can go wrong is folded into the returned dict (no
    exception ever crosses the process boundary), and simulated OOM is
    a *legitimate* outcome — the paper's tables have OOM cells too.

    When ``trace_path`` is given the cell runs fully instrumented and
    its Chrome trace (with embedded metrics) is written there by the
    worker itself, so per-cell traces work under any worker count.
    """
    from repro.core.experiment import Experiment
    from repro.export import result_to_cell_dict

    obs = None
    if trace_path is not None:
        from repro.obs import Observability

        obs = Observability.create(trace=True, metrics=True)

    start = time.perf_counter()
    timer_armed = False
    if timeout_s and threading.current_thread() is threading.main_thread():
        def _on_alarm(signum, frame):
            raise CellTimeoutError(
                f"cell exceeded its {timeout_s:.1f} s budget"
            )

        signal.signal(signal.SIGALRM, _on_alarm)
        signal.setitimer(signal.ITIMER_REAL, timeout_s)
        timer_armed = True
    try:
        result = Experiment(config, obs=obs).run()
        payload = result_to_cell_dict(result)
        if obs is not None:
            from repro.obs.chrome import write_chrome_trace

            write_chrome_trace(trace_path, obs.tracer, obs.metrics)
        return {"ok": True, "payload": payload,
                "wall_s": time.perf_counter() - start}
    except OutOfMemoryError as exc:
        payload = {
            "schema": "repro-cell-v1",
            "oom": True,
            "config": {
                "benchmark": config.benchmark,
                "vm": config.vm,
                "platform": config.platform,
                "collector": config.collector,
                "heap_mb": config.heap_mb,
                "seed": config.seed,
                "input_scale": config.input_scale,
            },
            "error": str(exc),
        }
        return {"ok": True, "payload": payload,
                "wall_s": time.perf_counter() - start}
    except BaseException as exc:  # noqa: BLE001 - reported, not hidden
        return {
            "ok": False,
            "error": str(exc),
            "error_type": type(exc).__name__,
            "traceback": traceback.format_exc(),
            "wall_s": time.perf_counter() - start,
        }
    finally:
        if timer_armed:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, signal.SIG_DFL)


@dataclass
class CellResult:
    """Outcome of one campaign cell."""

    config: object               # ExperimentConfig
    ok: bool
    payload: Optional[dict] = None
    error: Optional[str] = None
    error_type: Optional[str] = None
    attempts: int = 1
    wall_s: float = 0.0
    from_cache: bool = False

    @property
    def oom(self):
        return bool(self.payload and self.payload.get("oom"))


@dataclass
class CampaignSummary:
    """Machine-readable campaign metrics.

    Beyond the ok/failed/cached tallies, the summary now accounts for
    the failure modes that used to be graceful but silent in aggregate:
    retries spent (``n_retries`` extra attempts across ``n_retried``
    cells), cells whose final outcome was a timeout (``n_timeouts``),
    and per-cell wall-time statistics over the cells actually executed.
    """

    n_cells: int
    n_ok: int
    n_failed: int
    n_cached: int
    n_executed: int
    wall_s: float
    workers: int
    cell_wall_s: dict = field(default_factory=dict)  # index -> seconds
    n_retried: int = 0        # cells that needed more than one attempt
    n_retries: int = 0        # extra attempts summed over those cells
    n_timeouts: int = 0       # cells whose final outcome was a timeout

    @property
    def cache_hit_rate(self):
        return self.n_cached / self.n_cells if self.n_cells else 0.0

    @property
    def cells_per_second(self):
        return self.n_cells / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def mean_cell_wall_s(self):
        """Mean wall seconds over cells actually executed (not cached)."""
        executed = [s for s in self.cell_wall_s.values() if s > 0]
        if not executed:
            return 0.0
        return sum(executed) / len(executed)

    @property
    def max_cell_wall_s(self):
        executed = [s for s in self.cell_wall_s.values() if s > 0]
        return max(executed) if executed else 0.0

    def as_dict(self):
        return {
            "n_cells": self.n_cells,
            "n_ok": self.n_ok,
            "n_failed": self.n_failed,
            "n_cached": self.n_cached,
            "n_executed": self.n_executed,
            "cache_hit_rate": self.cache_hit_rate,
            "n_retried": self.n_retried,
            "n_retries": self.n_retries,
            "n_timeouts": self.n_timeouts,
            "wall_s": self.wall_s,
            "workers": self.workers,
            "cells_per_second": self.cells_per_second,
            "mean_cell_wall_s": self.mean_cell_wall_s,
            "max_cell_wall_s": self.max_cell_wall_s,
            "cell_wall_s": dict(self.cell_wall_s),
        }

    def describe(self):
        text = (
            f"{self.n_cells} cells: {self.n_ok} ok, {self.n_failed} "
            f"failed, {self.n_cached} from cache "
            f"({100.0 * self.cache_hit_rate:.0f}% hit rate); "
            f"{self.wall_s:.2f} s wall on {self.workers} worker(s) "
            f"({self.cells_per_second:.1f} cells/s)"
        )
        if self.n_executed:
            text += (
                f"; per-cell wall mean {self.mean_cell_wall_s:.2f} s, "
                f"max {self.max_cell_wall_s:.2f} s"
            )
        if self.n_retries:
            text += (
                f"; {self.n_retries} retr"
                f"{'y' if self.n_retries == 1 else 'ies'} across "
                f"{self.n_retried} cell(s)"
            )
        if self.n_timeouts:
            text += f"; {self.n_timeouts} timeout(s)"
        return text


@dataclass
class CampaignResult:
    """Everything a campaign produced, in grid order."""

    cells: list                  # [CellResult, ...]
    summary: CampaignSummary

    def __iter__(self):
        return iter(self.cells)

    def __len__(self):
        return len(self.cells)

    def ok_cells(self):
        return [c for c in self.cells if c.ok]

    def failed_cells(self):
        return [c for c in self.cells if not c.ok]

    def payloads(self):
        """Successful payloads keyed by their cell's config."""
        return {c.config: c.payload for c in self.cells if c.ok}

    def as_dict(self):
        """JSON-serializable campaign report."""
        from dataclasses import asdict

        return {
            "schema": "repro-campaign-v1",
            "summary": self.summary.as_dict(),
            "cells": [
                {
                    "config": asdict(cell.config),
                    "ok": cell.ok,
                    "from_cache": cell.from_cache,
                    "attempts": cell.attempts,
                    "wall_s": cell.wall_s,
                    "error": cell.error,
                    "error_type": cell.error_type,
                    "payload": cell.payload,
                }
                for cell in self.cells
            ],
        }


class CampaignRunner:
    """Executes campaigns: cache lookup, process pool, retry, metrics."""

    def __init__(self, workers=1, cache_dir=None, timeout_s=None,
                 retries=1, progress=None, obs=None, trace_dir=None,
                 cache=None):
        if workers < 1:
            raise CampaignError("workers must be >= 1")
        if retries < 0:
            raise CampaignError("retries cannot be negative")
        if timeout_s is not None and timeout_s <= 0:
            raise CampaignError("timeout_s must be positive")
        if cache is not None and cache_dir is not None:
            raise CampaignError("give either cache or cache_dir, not both")
        self.workers = int(workers)
        if cache is not None:
            # A shared ResultCache instance — the experiment service
            # runs many campaigns against one cache so hit/miss counts
            # aggregate across jobs.
            self.cache = cache
        else:
            self.cache = (
                ResultCache(cache_dir) if cache_dir is not None else None
            )
        self.timeout_s = timeout_s
        self.retries = int(retries)
        self.progress = progress
        #: Campaign-level observability: wall-clock cell spans, cache
        #: hit/miss/retry/timeout counters, a per-cell wall histogram.
        self.obs = obs if obs is not None else NULL_OBS
        #: When set, each executed cell writes a Chrome trace (with
        #: embedded metrics) to ``trace_dir/cell-<index>.json`` from
        #: inside its worker process.
        self.trace_dir = Path(trace_dir) if trace_dir is not None else None

    # -- public API ---------------------------------------------------

    def run(self, campaign):
        """Run *campaign* (a :class:`CampaignConfig` or an explicit
        sequence of :class:`ExperimentConfig` cells); returns a
        :class:`CampaignResult` with one :class:`CellResult` per cell,
        in grid order."""
        if isinstance(campaign, CampaignConfig):
            cells = campaign.cells()
        else:
            cells = list(campaign)
            if not cells:
                raise CampaignError("campaign has no cells")
        if self.trace_dir is not None:
            self.trace_dir.mkdir(parents=True, exist_ok=True)
        log = self.obs.log
        metrics = self.obs.metrics
        log.info("campaign.start", n_cells=len(cells),
                 workers=self.workers)
        start = time.perf_counter()
        results = [None] * len(cells)

        with self.obs.tracer.wall_span("campaign", track="campaign",
                                       n_cells=len(cells),
                                       workers=self.workers):
            pending = []
            for i, config in enumerate(cells):
                cached = self.cache.get(config) if self.cache else None
                if cached is not None:
                    metrics.counter("campaign.cache_hits").inc()
                    results[i] = CellResult(
                        config=config, ok=True, payload=cached,
                        attempts=0, wall_s=0.0, from_cache=True,
                    )
                    self._report(i, len(cells), results[i])
                else:
                    if self.cache is not None:
                        metrics.counter("campaign.cache_misses").inc()
                    pending.append(i)

            if pending:
                if self.workers == 1:
                    self._run_serial(cells, pending, results)
                else:
                    self._run_pool(cells, pending, results)

        wall = time.perf_counter() - start
        n_ok = sum(1 for r in results if r.ok)
        n_cached = sum(1 for r in results if r.from_cache)
        retried = [r for r in results if r.attempts > 1]
        n_timeouts = sum(
            1 for r in results
            if not r.ok and r.error_type == "CellTimeoutError"
        )
        summary = CampaignSummary(
            n_cells=len(cells),
            n_ok=n_ok,
            n_failed=len(cells) - n_ok,
            n_cached=n_cached,
            n_executed=len(cells) - n_cached,
            wall_s=wall,
            workers=self.workers,
            cell_wall_s={i: r.wall_s for i, r in enumerate(results)},
            n_retried=len(retried),
            n_retries=sum(r.attempts - 1 for r in retried),
            n_timeouts=n_timeouts,
        )
        if metrics.enabled:
            metrics.counter("campaign.cells").inc(len(cells))
            metrics.counter("campaign.retries").inc(summary.n_retries)
            metrics.counter("campaign.timeouts").inc(n_timeouts)
            metrics.counter("campaign.failures").inc(summary.n_failed)
        log.info("campaign.finish", **{
            k: v for k, v in summary.as_dict().items()
            if k != "cell_wall_s"
        })
        return CampaignResult(cells=results, summary=summary)

    def _cell_trace_path(self, index):
        if self.trace_dir is None:
            return None
        return self.trace_dir / f"cell-{index:04d}.json"

    # -- execution backends -------------------------------------------

    def _run_serial(self, cells, pending, results):
        for i in pending:
            outcome, attempts = None, 0
            while attempts <= self.retries:
                attempts += 1
                outcome = _execute_cell(cells[i], self.timeout_s,
                                        self._cell_trace_path(i))
                if outcome["ok"]:
                    break
            results[i] = self._finish_cell(cells[i], outcome, attempts)
            self._report(i, len(cells), results[i])

    def _run_pool(self, cells, pending, results):
        attempts = {i: 0 for i in pending}
        queue = deque(pending)
        pool = ProcessPoolExecutor(max_workers=self.workers)
        futures = {}
        try:
            while queue or futures:
                broken = False
                while queue:
                    i = queue.popleft()
                    attempts[i] += 1
                    try:
                        fut = pool.submit(
                            _execute_cell, cells[i], self.timeout_s,
                            self._cell_trace_path(i),
                        )
                    except BrokenProcessPool:
                        queue.appendleft(i)
                        attempts[i] -= 1
                        broken = True
                        break
                    futures[fut] = i
                if futures and not broken:
                    done, _ = wait(
                        futures, return_when=FIRST_COMPLETED
                    )
                    for fut in done:
                        i = futures.pop(fut)
                        exc = fut.exception()
                        if isinstance(exc, BrokenProcessPool):
                            broken = True
                            outcome = {
                                "ok": False,
                                "error": "worker process died",
                                "error_type": "BrokenProcessPool",
                                "wall_s": 0.0,
                            }
                        elif exc is not None:
                            outcome = {
                                "ok": False,
                                "error": str(exc),
                                "error_type": type(exc).__name__,
                                "wall_s": 0.0,
                            }
                        else:
                            outcome = fut.result()
                        if (not outcome["ok"]
                                and attempts[i] <= self.retries):
                            queue.append(i)
                            continue
                        results[i] = self._finish_cell(
                            cells[i], outcome, attempts[i]
                        )
                        self._report(i, len(cells), results[i])
                if broken:
                    # The pool died: every outstanding future fails the
                    # same way.  Requeue cells with attempts left, fail
                    # the rest, and start a fresh pool.
                    for fut, i in list(futures.items()):
                        if attempts[i] <= self.retries:
                            queue.append(i)
                        else:
                            results[i] = CellResult(
                                config=cells[i], ok=False,
                                error="worker pool broke",
                                error_type="BrokenProcessPool",
                                attempts=attempts[i],
                            )
                            self._report(i, len(cells), results[i])
                    futures.clear()
                    pool.shutdown(wait=False, cancel_futures=True)
                    pool = ProcessPoolExecutor(max_workers=self.workers)
        finally:
            pool.shutdown(wait=True, cancel_futures=True)

    # -- bookkeeping --------------------------------------------------

    def _finish_cell(self, config, outcome, attempts):
        if outcome["ok"]:
            if self.cache is not None:
                self.cache.put(config, outcome["payload"])
            cell = CellResult(
                config=config, ok=True, payload=outcome["payload"],
                attempts=attempts, wall_s=outcome["wall_s"],
            )
        else:
            cell = CellResult(
                config=config, ok=False,
                error=outcome.get("error"),
                error_type=outcome.get("error_type"),
                attempts=attempts, wall_s=outcome["wall_s"],
            )
            self.obs.log.warning(
                "campaign.cell_failed", benchmark=config.benchmark,
                vm=config.vm, heap_mb=config.heap_mb,
                error_type=cell.error_type, error=cell.error,
                attempts=attempts,
            )
        self._observe_cell(cell)
        return cell

    def _observe_cell(self, cell):
        """Wall span + wall-time histogram for one executed cell."""
        self.obs.metrics.histogram("campaign.cell_wall_s").observe(
            cell.wall_s
        )
        tracer = self.obs.tracer
        if tracer.enabled:
            cfg = cell.config
            tracer.add_wall_span(
                f"{cfg.benchmark} {cfg.vm}@{cfg.heap_mb}MB", "cells",
                max(tracer.now_wall() - cell.wall_s, 0.0), cell.wall_s,
                ok=cell.ok, attempts=cell.attempts,
                error_type=cell.error_type,
            )

    def _report(self, index, total, cell):
        if self.progress is not None:
            self.progress(index, total, cell)


def run_campaign(campaign, workers=1, cache_dir=None, timeout_s=None,
                 retries=1, progress=None, obs=None, trace_dir=None):
    """One-call convenience wrapper around :class:`CampaignRunner`."""
    return CampaignRunner(
        workers=workers, cache_dir=cache_dir, timeout_s=timeout_s,
        retries=retries, progress=progress, obs=obs,
        trace_dir=trace_dir,
    ).run(campaign)
