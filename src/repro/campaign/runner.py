"""Multiprocess campaign executor with caching and graceful degradation.

The runner takes the expanded cell list and drives it to completion:

* cells whose payload is already in the on-disk cache are served
  without simulating anything;
* the rest are grouped by *sim-key* (the content hash of their
  simulation-only config subset — see
  :func:`repro.campaign.artifacts.sim_key`): each group executes the
  simulate phase once and fans out one measurement pass per cell, so a
  DAQ-period sweep pays for one execution instead of N.  With an
  ``artifact_dir`` the recorded execution also persists across
  campaign runs through the content-addressed
  :class:`~repro.campaign.artifacts.ArtifactStore`;
* groups run on a ``concurrent.futures.ProcessPoolExecutor`` (or
  in-process when ``workers <= 1``), each cell under a per-cell
  wall-clock budget enforced *inside* the worker with an interval
  timer, with a bounded number of retries;
* a cell that still fails records a structured error entry and the
  campaign continues — one poisoned configuration cannot abort a
  thousand-cell matrix;
* per-cell wall time, cache hit rate and worker throughput are folded
  into a machine-readable :class:`CampaignSummary`.

Determinism: a cell's result depends only on its
:class:`~repro.core.experiment.ExperimentConfig` (the simulator is
seeded, and measurement RNGs derive from the cell seed), so the same
campaign produces bit-identical per-cell payloads whether it runs
serially, on two workers, or from cache.
"""

import signal
import threading
import time
import traceback
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.campaign.cache import ResultCache
from repro.campaign.grid import CampaignConfig
from repro.errors import (
    CampaignError,
    CellTimeoutError,
    OutOfMemoryError,
)
from repro.obs import NULL_OBS


def _oom_payload(config, error):
    """The structured payload for a cell whose simulation ran out of
    heap — a *legitimate* outcome (the paper's tables have OOM cells),
    shared by the fused and the artifact-sharing execution paths so
    both produce identical bytes."""
    return {
        "schema": "repro-cell-v1",
        "oom": True,
        "config": {
            "benchmark": config.benchmark,
            "vm": config.vm,
            "platform": config.platform,
            "collector": config.collector,
            "heap_mb": config.heap_mb,
            "seed": config.seed,
            "input_scale": config.input_scale,
        },
        "error": error,
    }


class _CellTimer:
    """Per-cell wall-clock budget via SIGALRM (worker main thread only)."""

    def __init__(self, timeout_s):
        self.timeout_s = timeout_s
        self.armed = False

    def __enter__(self):
        if self.timeout_s and (
            threading.current_thread() is threading.main_thread()
        ):
            timeout_s = self.timeout_s

            def _on_alarm(signum, frame):
                raise CellTimeoutError(
                    f"cell exceeded its {timeout_s:.1f} s budget"
                )

            signal.signal(signal.SIGALRM, _on_alarm)
            signal.setitimer(signal.ITIMER_REAL, timeout_s)
            self.armed = True
        return self

    def __exit__(self, *exc_info):
        if self.armed:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, signal.SIG_DFL)
            self.armed = False
        return False


def _cell_obs(trace_path):
    if trace_path is None:
        return None
    from repro.obs import Observability

    return Observability.create(trace=True, metrics=True)


def _execute_cell(config, timeout_s, trace_path=None):
    """Worker entry point: run one cell fused, return a plain-dict
    outcome.

    Everything that can go wrong is folded into the returned dict (no
    exception ever crosses the process boundary), and simulated OOM is
    a *legitimate* outcome — the paper's tables have OOM cells too.

    When ``trace_path`` is given the cell runs fully instrumented and
    its Chrome trace (with embedded metrics) is written there by the
    worker itself, so per-cell traces work under any worker count.

    This is the fused reference path; campaign execution goes through
    :func:`_execute_group`, which shares one simulation across cells
    with the same sim-key and is byte-identical to this path (the
    golden equivalence gate asserts it).
    """
    from repro.core.experiment import Experiment
    from repro.export import result_to_cell_dict

    obs = _cell_obs(trace_path)
    start = time.perf_counter()
    try:
        with _CellTimer(timeout_s):
            result = Experiment(config, obs=obs).run()
            payload = result_to_cell_dict(result)
        if obs is not None:
            from repro.obs.chrome import write_chrome_trace

            write_chrome_trace(trace_path, obs.tracer, obs.metrics)
        return {"ok": True, "payload": payload,
                "wall_s": time.perf_counter() - start}
    except OutOfMemoryError as exc:
        return {"ok": True, "payload": _oom_payload(config, str(exc)),
                "wall_s": time.perf_counter() - start}
    except BaseException as exc:  # noqa: BLE001 - reported, not hidden
        return {
            "ok": False,
            "error": str(exc),
            "error_type": type(exc).__name__,
            "traceback": traceback.format_exc(),
            "wall_s": time.perf_counter() - start,
        }


def _execute_group(configs, timeout_s, trace_paths=None,
                   artifact_dir=None):
    """Worker entry point: run a group of cells that share one sim-key.

    The first cell simulates (or loads the persisted artifact when
    ``artifact_dir`` is given) and every cell measures from the shared
    :class:`~repro.core.simulation.SimulationArtifact` — this is how a
    DAQ-period sweep pays for one execution instead of N.  Outcomes
    come back in *configs* order, one plain dict per cell, each marked
    with the group's ``sim_key`` and whether this cell ran the
    simulation (``simulated``) or found it on disk (``artifact_hit``).

    Failure isolation matches the per-cell path: a cell that fails
    (timeout included) folds into its own outcome dict and the rest of
    the group continues.  A simulated OOM is shared ground truth — the
    simulation config is identical across the group, so the first
    cell's OOM is replicated to the others without re-running it.
    """
    from repro.campaign.artifacts import ArtifactStore, sim_key
    from repro.core.experiment import Experiment
    from repro.export import result_to_cell_dict

    store = ArtifactStore(artifact_dir) if artifact_dir else None
    outcomes = []
    artifact = None
    oom_error = None
    try:
        key = sim_key(configs[0])
    except BaseException as exc:  # noqa: BLE001 - fold into outcomes
        error = {
            "ok": False,
            "error": str(exc),
            "error_type": type(exc).__name__,
            "traceback": traceback.format_exc(),
            "wall_s": 0.0,
        }
        return [dict(error) for _ in configs]
    for pos, config in enumerate(configs):
        trace_path = trace_paths[pos] if trace_paths else None
        obs = _cell_obs(trace_path)
        start = time.perf_counter()
        simulated = False
        artifact_hit = False
        try:
            with _CellTimer(timeout_s):
                if oom_error is not None:
                    payload = _oom_payload(config, oom_error)
                else:
                    experiment = Experiment(config, obs=obs)
                    if artifact is None and store is not None:
                        artifact = store.get_key(key)
                        artifact_hit = artifact is not None
                    if artifact is None:
                        artifact = experiment.simulate().artifact()
                        simulated = True
                        if store is not None:
                            store.put(config, artifact)
                    result = experiment.measure(artifact)
                    payload = result_to_cell_dict(result)
            if obs is not None:
                from repro.obs.chrome import write_chrome_trace

                write_chrome_trace(trace_path, obs.tracer, obs.metrics)
            outcomes.append({
                "ok": True, "payload": payload,
                "wall_s": time.perf_counter() - start,
                "sim_key": key, "simulated": simulated,
                "artifact_hit": artifact_hit,
            })
        except OutOfMemoryError as exc:
            oom_error = str(exc)
            outcomes.append({
                "ok": True, "payload": _oom_payload(config, oom_error),
                "wall_s": time.perf_counter() - start,
                "sim_key": key, "simulated": False,
                "artifact_hit": False,
            })
        except BaseException as exc:  # noqa: BLE001 - reported, not hidden
            outcomes.append({
                "ok": False,
                "error": str(exc),
                "error_type": type(exc).__name__,
                "traceback": traceback.format_exc(),
                "wall_s": time.perf_counter() - start,
                "sim_key": key,
            })
    return outcomes


@dataclass
class CellResult:
    """Outcome of one campaign cell."""

    config: object               # ExperimentConfig
    ok: bool
    payload: Optional[dict] = None
    error: Optional[str] = None
    error_type: Optional[str] = None
    attempts: int = 1
    wall_s: float = 0.0
    from_cache: bool = False
    #: Content hash of the cell's simulation-only config subset; cells
    #: sharing it shared one recorded execution (``None`` for cached
    #: cells, which never reached the executor).
    sim_key: Optional[str] = None
    #: True when this cell actually ran the simulate phase (at most one
    #: per sim-key per campaign run).
    simulated: bool = False
    #: True when this cell loaded its simulation from the artifact
    #: store instead of executing it.
    artifact_hit: bool = False

    @property
    def oom(self):
        return bool(self.payload and self.payload.get("oom"))


@dataclass
class CampaignSummary:
    """Machine-readable campaign metrics.

    Beyond the ok/failed/cached tallies, the summary now accounts for
    the failure modes that used to be graceful but silent in aggregate:
    retries spent (``n_retries`` extra attempts across ``n_retried``
    cells), cells whose final outcome was a timeout (``n_timeouts``),
    and per-cell wall-time statistics over the cells actually executed.
    """

    n_cells: int
    n_ok: int
    n_failed: int
    n_cached: int
    n_executed: int
    wall_s: float
    workers: int
    cell_wall_s: dict = field(default_factory=dict)  # index -> seconds
    n_retried: int = 0        # cells that needed more than one attempt
    n_retries: int = 0        # extra attempts summed over those cells
    n_timeouts: int = 0       # cells whose final outcome was a timeout
    n_simulations: int = 0    # simulate phases actually executed
    n_sim_keys: int = 0       # distinct sim-keys among executed cells
    n_artifact_hits: int = 0  # cells served from the artifact store

    @property
    def cache_hit_rate(self):
        return self.n_cached / self.n_cells if self.n_cells else 0.0

    @property
    def cells_per_second(self):
        return self.n_cells / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def mean_cell_wall_s(self):
        """Mean wall seconds over cells actually executed (not cached)."""
        executed = [s for s in self.cell_wall_s.values() if s > 0]
        if not executed:
            return 0.0
        return sum(executed) / len(executed)

    @property
    def max_cell_wall_s(self):
        executed = [s for s in self.cell_wall_s.values() if s > 0]
        return max(executed) if executed else 0.0

    def as_dict(self):
        return {
            "n_cells": self.n_cells,
            "n_ok": self.n_ok,
            "n_failed": self.n_failed,
            "n_cached": self.n_cached,
            "n_executed": self.n_executed,
            "cache_hit_rate": self.cache_hit_rate,
            "n_retried": self.n_retried,
            "n_retries": self.n_retries,
            "n_timeouts": self.n_timeouts,
            "n_simulations": self.n_simulations,
            "n_sim_keys": self.n_sim_keys,
            "n_artifact_hits": self.n_artifact_hits,
            "wall_s": self.wall_s,
            "workers": self.workers,
            "cells_per_second": self.cells_per_second,
            "mean_cell_wall_s": self.mean_cell_wall_s,
            "max_cell_wall_s": self.max_cell_wall_s,
            "cell_wall_s": dict(self.cell_wall_s),
        }

    def describe(self):
        text = (
            f"{self.n_cells} cells: {self.n_ok} ok, {self.n_failed} "
            f"failed, {self.n_cached} from cache "
            f"({100.0 * self.cache_hit_rate:.0f}% hit rate); "
            f"{self.wall_s:.2f} s wall on {self.workers} worker(s) "
            f"({self.cells_per_second:.1f} cells/s)"
        )
        if self.n_executed:
            text += (
                f"; per-cell wall mean {self.mean_cell_wall_s:.2f} s, "
                f"max {self.max_cell_wall_s:.2f} s"
            )
        if self.n_retries:
            text += (
                f"; {self.n_retries} retr"
                f"{'y' if self.n_retries == 1 else 'ies'} across "
                f"{self.n_retried} cell(s)"
            )
        if self.n_timeouts:
            text += f"; {self.n_timeouts} timeout(s)"
        if self.n_executed and self.n_sim_keys:
            text += (
                f"; {self.n_simulations} simulation(s) across "
                f"{self.n_sim_keys} sim-key(s)"
            )
            if self.n_artifact_hits:
                text += f", {self.n_artifact_hits} artifact hit(s)"
        return text


@dataclass
class CampaignResult:
    """Everything a campaign produced, in grid order."""

    cells: list                  # [CellResult, ...]
    summary: CampaignSummary

    def __iter__(self):
        return iter(self.cells)

    def __len__(self):
        return len(self.cells)

    def ok_cells(self):
        return [c for c in self.cells if c.ok]

    def failed_cells(self):
        return [c for c in self.cells if not c.ok]

    def payloads(self):
        """Successful payloads keyed by their cell's config."""
        return {c.config: c.payload for c in self.cells if c.ok}

    def as_dict(self):
        """JSON-serializable campaign report."""
        from dataclasses import asdict

        return {
            "schema": "repro-campaign-v1",
            "summary": self.summary.as_dict(),
            "cells": [
                {
                    "config": asdict(cell.config),
                    "ok": cell.ok,
                    "from_cache": cell.from_cache,
                    "attempts": cell.attempts,
                    "wall_s": cell.wall_s,
                    "error": cell.error,
                    "error_type": cell.error_type,
                    "payload": cell.payload,
                }
                for cell in self.cells
            ],
        }


class CampaignRunner:
    """Executes campaigns: cache lookup, process pool, retry, metrics."""

    def __init__(self, workers=1, cache_dir=None, timeout_s=None,
                 retries=1, progress=None, obs=None, trace_dir=None,
                 cache=None, artifact_dir=None):
        if workers < 1:
            raise CampaignError("workers must be >= 1")
        if retries < 0:
            raise CampaignError("retries cannot be negative")
        if timeout_s is not None and timeout_s <= 0:
            raise CampaignError("timeout_s must be positive")
        if cache is not None and cache_dir is not None:
            raise CampaignError("give either cache or cache_dir, not both")
        self.workers = int(workers)
        #: When set, simulation artifacts persist under this directory
        #: (content-addressed by sim-key) and are shared across
        #: campaign runs; without it, sharing is in-memory within one
        #: run only.
        self.artifact_dir = (
            str(artifact_dir) if artifact_dir is not None else None
        )
        if cache is not None:
            # A shared ResultCache instance — the experiment service
            # runs many campaigns against one cache so hit/miss counts
            # aggregate across jobs.
            self.cache = cache
        else:
            self.cache = (
                ResultCache(cache_dir) if cache_dir is not None else None
            )
        self.timeout_s = timeout_s
        self.retries = int(retries)
        self.progress = progress
        #: Campaign-level observability: wall-clock cell spans, cache
        #: hit/miss/retry/timeout counters, a per-cell wall histogram.
        self.obs = obs if obs is not None else NULL_OBS
        #: When set, each executed cell writes a Chrome trace (with
        #: embedded metrics) to ``trace_dir/cell-<index>.json`` from
        #: inside its worker process.
        self.trace_dir = Path(trace_dir) if trace_dir is not None else None

    # -- public API ---------------------------------------------------

    def run(self, campaign):
        """Run *campaign* (a :class:`CampaignConfig` or an explicit
        sequence of :class:`ExperimentConfig` cells); returns a
        :class:`CampaignResult` with one :class:`CellResult` per cell,
        in grid order."""
        if isinstance(campaign, CampaignConfig):
            cells = campaign.cells()
        else:
            cells = list(campaign)
            if not cells:
                raise CampaignError("campaign has no cells")
        if self.trace_dir is not None:
            self.trace_dir.mkdir(parents=True, exist_ok=True)
        log = self.obs.log
        metrics = self.obs.metrics
        log.info("campaign.start", n_cells=len(cells),
                 workers=self.workers)
        start = time.perf_counter()
        results = [None] * len(cells)

        with self.obs.tracer.wall_span("campaign", track="campaign",
                                       n_cells=len(cells),
                                       workers=self.workers):
            pending = []
            for i, config in enumerate(cells):
                cached = self.cache.get(config) if self.cache else None
                if cached is not None:
                    metrics.counter("campaign.cache_hits").inc()
                    results[i] = CellResult(
                        config=config, ok=True, payload=cached,
                        attempts=0, wall_s=0.0, from_cache=True,
                    )
                    self._report(i, len(cells), results[i])
                else:
                    if self.cache is not None:
                        metrics.counter("campaign.cache_misses").inc()
                    pending.append(i)

            if pending:
                if self.workers == 1:
                    self._run_serial(cells, pending, results)
                else:
                    self._run_pool(cells, pending, results)

        wall = time.perf_counter() - start
        n_ok = sum(1 for r in results if r.ok)
        n_cached = sum(1 for r in results if r.from_cache)
        retried = [r for r in results if r.attempts > 1]
        n_timeouts = sum(
            1 for r in results
            if not r.ok and r.error_type == "CellTimeoutError"
        )
        sim_keys = {r.sim_key for r in results if r.sim_key}
        summary = CampaignSummary(
            n_cells=len(cells),
            n_ok=n_ok,
            n_failed=len(cells) - n_ok,
            n_cached=n_cached,
            n_executed=len(cells) - n_cached,
            wall_s=wall,
            workers=self.workers,
            cell_wall_s={i: r.wall_s for i, r in enumerate(results)},
            n_retried=len(retried),
            n_retries=sum(r.attempts - 1 for r in retried),
            n_timeouts=n_timeouts,
            n_simulations=sum(1 for r in results if r.simulated),
            n_sim_keys=len(sim_keys),
            n_artifact_hits=sum(1 for r in results if r.artifact_hit),
        )
        if metrics.enabled:
            metrics.counter("campaign.cells").inc(len(cells))
            metrics.counter("campaign.retries").inc(summary.n_retries)
            metrics.counter("campaign.timeouts").inc(n_timeouts)
            metrics.counter("campaign.failures").inc(summary.n_failed)
        log.info("campaign.finish", **{
            k: v for k, v in summary.as_dict().items()
            if k != "cell_wall_s"
        })
        return CampaignResult(cells=results, summary=summary)

    def _cell_trace_path(self, index):
        if self.trace_dir is None:
            return None
        return self.trace_dir / f"cell-{index:04d}.json"

    # -- execution backends -------------------------------------------

    def _sim_groups(self, cells, pending):
        """Partition pending cell indices by simulation identity.

        Cells sharing a sim-key form one group and pay for one
        simulate phase; grid order is preserved both across groups
        (first-appearance order) and within each group.  A config
        whose sim-key cannot be computed gets a private group — it
        will fail inside the worker with a structured error, like any
        other poisoned cell.
        """
        from repro.campaign.artifacts import sim_key

        groups = {}
        order = []
        for i in pending:
            try:
                key = sim_key(cells[i])
            except Exception:  # noqa: BLE001 - fail inside the worker
                key = f"ungrouped-{i}"
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(i)
        return [groups[key] for key in order]

    def _submit_group(self, cells, indices):
        """The ``_execute_group`` argument tuple for *indices*."""
        return (
            [cells[i] for i in indices],
            self.timeout_s,
            [self._cell_trace_path(i) for i in indices],
            self.artifact_dir,
        )

    def _run_serial(self, cells, pending, results):
        for indices in self._sim_groups(cells, pending):
            outcomes = _execute_group(*self._submit_group(cells, indices))
            for i, outcome in zip(indices, outcomes):
                attempts = 1
                while not outcome["ok"] and attempts <= self.retries:
                    attempts += 1
                    # Retries run as singleton groups: with an artifact
                    # store the recorded execution is reused, without
                    # one the cell re-simulates in isolation.
                    outcome = _execute_group(
                        *self._submit_group(cells, [i])
                    )[0]
                results[i] = self._finish_cell(cells[i], outcome, attempts)
                self._report(i, len(cells), results[i])

    def _run_pool(self, cells, pending, results):
        attempts = {i: 0 for i in pending}
        queue = deque(self._sim_groups(cells, pending))
        pool = ProcessPoolExecutor(max_workers=self.workers)
        futures = {}
        try:
            while queue or futures:
                broken = False
                while queue:
                    indices = queue.popleft()
                    for i in indices:
                        attempts[i] += 1
                    try:
                        fut = pool.submit(
                            _execute_group,
                            *self._submit_group(cells, indices),
                        )
                    except BrokenProcessPool:
                        queue.appendleft(indices)
                        for i in indices:
                            attempts[i] -= 1
                        broken = True
                        break
                    futures[fut] = indices
                if futures and not broken:
                    done, _ = wait(
                        futures, return_when=FIRST_COMPLETED
                    )
                    for fut in done:
                        indices = futures.pop(fut)
                        exc = fut.exception()
                        if isinstance(exc, BrokenProcessPool):
                            broken = True
                            outcomes = [{
                                "ok": False,
                                "error": "worker process died",
                                "error_type": "BrokenProcessPool",
                                "wall_s": 0.0,
                            } for _ in indices]
                        elif exc is not None:
                            outcomes = [{
                                "ok": False,
                                "error": str(exc),
                                "error_type": type(exc).__name__,
                                "wall_s": 0.0,
                            } for _ in indices]
                        else:
                            outcomes = fut.result()
                        for i, outcome in zip(indices, outcomes):
                            if (not outcome["ok"]
                                    and attempts[i] <= self.retries):
                                queue.append([i])
                                continue
                            results[i] = self._finish_cell(
                                cells[i], outcome, attempts[i]
                            )
                            self._report(i, len(cells), results[i])
                if broken:
                    # The pool died: every outstanding future fails the
                    # same way.  Requeue cells with attempts left, fail
                    # the rest, and start a fresh pool.
                    for fut, indices in list(futures.items()):
                        requeue = []
                        for i in indices:
                            if attempts[i] <= self.retries:
                                requeue.append(i)
                            else:
                                results[i] = CellResult(
                                    config=cells[i], ok=False,
                                    error="worker pool broke",
                                    error_type="BrokenProcessPool",
                                    attempts=attempts[i],
                                )
                                self._report(i, len(cells), results[i])
                        if requeue:
                            queue.append(requeue)
                    futures.clear()
                    pool.shutdown(wait=False, cancel_futures=True)
                    pool = ProcessPoolExecutor(max_workers=self.workers)
        finally:
            pool.shutdown(wait=True, cancel_futures=True)

    # -- bookkeeping --------------------------------------------------

    def _finish_cell(self, config, outcome, attempts):
        if outcome["ok"]:
            if self.cache is not None:
                self.cache.put(config, outcome["payload"])
            cell = CellResult(
                config=config, ok=True, payload=outcome["payload"],
                attempts=attempts, wall_s=outcome["wall_s"],
                sim_key=outcome.get("sim_key"),
                simulated=outcome.get("simulated", False),
                artifact_hit=outcome.get("artifact_hit", False),
            )
        else:
            cell = CellResult(
                config=config, ok=False,
                error=outcome.get("error"),
                error_type=outcome.get("error_type"),
                attempts=attempts, wall_s=outcome["wall_s"],
                sim_key=outcome.get("sim_key"),
            )
            self.obs.log.warning(
                "campaign.cell_failed", benchmark=config.benchmark,
                vm=config.vm, heap_mb=config.heap_mb,
                error_type=cell.error_type, error=cell.error,
                attempts=attempts,
            )
        self._observe_cell(cell)
        return cell

    def _observe_cell(self, cell):
        """Wall span + wall-time histogram for one executed cell."""
        self.obs.metrics.histogram("campaign.cell_wall_s").observe(
            cell.wall_s
        )
        tracer = self.obs.tracer
        if tracer.enabled:
            cfg = cell.config
            tracer.add_wall_span(
                f"{cfg.benchmark} {cfg.vm}@{cfg.heap_mb}MB", "cells",
                max(tracer.now_wall() - cell.wall_s, 0.0), cell.wall_s,
                ok=cell.ok, attempts=cell.attempts,
                error_type=cell.error_type,
            )

    def _report(self, index, total, cell):
        if self.progress is not None:
            self.progress(index, total, cell)


def run_campaign(campaign, workers=1, cache_dir=None, timeout_s=None,
                 retries=1, progress=None, obs=None, trace_dir=None,
                 artifact_dir=None):
    """One-call convenience wrapper around :class:`CampaignRunner`."""
    return CampaignRunner(
        workers=workers, cache_dir=cache_dir, timeout_s=timeout_s,
        retries=retries, progress=progress, obs=obs,
        trace_dir=trace_dir, artifact_dir=artifact_dir,
    ).run(campaign)
