"""Simulated heap objects, lifetimes, and the root registry.

**Cohort objects.** Real benchmark runs allocate hundreds of megabytes in
tens of millions of small objects.  To keep tracing and copying costs
faithful while staying tractable, each :class:`SimObject` is a *cohort*: a
configurable granule of allocation (default 16 KiB) whose constituent real
objects share one lifetime.  All collector work (bytes traced, copied,
swept) is exact in bytes; per-object costs are folded into per-byte
constants using the average real object size.

**Lifetime-consistent references.** Each object is given a death time on
the allocation clock (total bytes allocated so far — the standard "time"
axis in GC literature).  Reference edges are only created toward targets
that die *no earlier* than the source, and the root registry drops an
object exactly when its death time passes.  Under these two rules, graph
reachability from the roots coincides with the drawn lifetime model:
anything reachable from a live root has a death time at least as late as
the root's, and anything past its death time cannot be reached.  The
collectors therefore perform *real* tracing — the liveness they discover
is genuinely emergent from the object graph.

The single sanctioned violation of the edge rule is the write barrier's
remembered set (see :mod:`repro.jvm.gc.generational`): mutation can
install old-to-young pointers whose targets die before their sources,
producing *nepotism* — dead nursery objects promoted by stale remembered
set entries and reclaimed only at the next full-heap collection, exactly
as in real generational collectors.
"""

import heapq
import itertools
import math

from repro.errors import ConfigurationError

#: Space tags (values are arbitrary but stable; used by collectors).
SPACE_DEFAULT = 0
SPACE_NURSERY = 1
SPACE_MATURE = 2

#: Assumed average size of a real Java object inside a cohort, used to
#: convert cohort counts into approximate real-object counts for reporting.
REAL_OBJECT_BYTES = 56

IMMORTAL = math.inf


class SimObject:
    """One cohort of allocated objects sharing a lifetime.

    ``birth`` and ``death`` are allocation-clock values (bytes allocated
    since the program started).  ``addr`` is a synthetic address assigned
    by the owning allocator and reassigned on copy/compaction; collectors
    use it for locality bookkeeping.  ``refs`` is the outgoing edge list.
    """

    __slots__ = (
        "size",
        "birth",
        "death",
        "space",
        "refs",
        "addr",
        "age",
        "pinned",
    )

    def __init__(self, size, birth, death, space=SPACE_DEFAULT):
        if size <= 0:
            raise ConfigurationError("object size must be positive")
        if death < birth:
            raise ConfigurationError("object cannot die before its birth")
        self.size = int(size)
        self.birth = birth
        self.death = death
        self.space = space
        self.refs = []
        self.addr = 0
        self.age = 0
        self.pinned = False

    @property
    def immortal(self):
        return self.death == IMMORTAL

    def is_live(self, now):
        """Whether the object's drawn lifetime extends past *now*."""
        return self.death > now

    def real_object_count(self):
        """Approximate number of real Java objects in this cohort."""
        return max(1, self.size // REAL_OBJECT_BYTES)

    def __repr__(self):
        return (
            f"SimObject(size={self.size}, birth={self.birth:.0f}, "
            f"death={self.death if self.immortal else round(self.death)}, "
            f"space={self.space})"
        )


class RootSet:
    """The mutator's root registry.

    Every live object is held by a root (a flat root model: stack and
    static reachability collapsed into one registry).  Objects are indexed
    by death time in a min-heap so that :meth:`expire` can drop exactly
    the objects whose lifetime has passed in O(log n) per death.
    """

    def __init__(self):
        self._heap = []
        self._counter = itertools.count()
        self._live = set()

    def __len__(self):
        return len(self._live)

    def __contains__(self, obj):
        return id(obj) in self._live

    def add(self, obj):
        """Register a newly allocated (therefore live) object."""
        heapq.heappush(self._heap, (obj.death, next(self._counter), obj))
        self._live.add(id(obj))

    def expire(self, now):
        """Drop every object whose death time is <= *now*.

        Returns the list of expired objects (the mutator "lets go" of
        them; their memory is reclaimed only when a collector runs).
        """
        expired = []
        while self._heap and self._heap[0][0] <= now:
            _, _, obj = heapq.heappop(self._heap)
            self._live.discard(id(obj))
            expired.append(obj)
        return expired

    def live_objects(self):
        """Iterate over the currently registered (live) objects."""
        for _, _, obj in self._heap:
            if id(obj) in self._live:
                yield obj

    def live_bytes(self):
        """Total bytes currently held by roots."""
        return sum(obj.size for obj in self.live_objects())

    def clear(self):
        self._heap = []
        self._live = set()


class ReferenceFactory:
    """Creates lifetime-consistent reference edges between objects.

    New objects receive up to ``max_refs`` outgoing edges chosen from a
    bounded window of recently allocated objects, filtered by the
    ``target.death >= source.death`` rule.  The window models the strong
    temporal clustering of real object graphs (objects mostly point to
    near-contemporaries) while keeping edge creation O(1).
    """

    def __init__(self, rng, max_refs=2, window=64, edge_prob=0.7):
        if window < 1:
            raise ConfigurationError("reference window must be >= 1")
        from repro.randutil import BufferedUniform

        self.rng = rng
        self._uniform = BufferedUniform(rng)
        self.max_refs = max_refs
        self.window = window
        self.edge_prob = edge_prob
        self._recent = []

    def wire(self, obj):
        """Give *obj* outgoing edges and enter it into the window."""
        recent = self._recent
        if recent and self.max_refs > 0:
            for _ in range(self.max_refs):
                if self._uniform.next() < self.edge_prob:
                    target = recent[self._uniform.next_index(len(recent))]
                    if target.death >= obj.death and target is not obj:
                        obj.refs.append(target)
        recent.append(obj)
        if len(recent) > self.window:
            self._recent = recent[-self.window:]

    def reset(self):
        self._recent = []


def trace_closure(roots, now=None, include=None):
    """Breadth-first trace from *roots* over reference edges.

    Returns ``(visited_objects, live_bytes, edges_traversed)``.  This is
    the shared tracing engine used by the mark phases of every collector;
    ``include`` optionally restricts the trace to objects in a given space
    set (used by minor collections).
    """
    visited = set()
    order = []
    stack = []
    edges = 0
    for root in roots:
        if include is not None and root.space not in include:
            continue
        if id(root) not in visited:
            visited.add(id(root))
            order.append(root)
            stack.append(root)
    while stack:
        obj = stack.pop()
        for target in obj.refs:
            edges += 1
            if include is not None and target.space not in include:
                continue
            if id(target) not in visited:
                visited.add(id(target))
                order.append(target)
                stack.append(target)
    live_bytes = sum(o.size for o in order)
    return order, live_bytes, edges
