"""Heap spaces and allocators.

Two allocator disciplines, mirroring JMTk (the Jikes RVM memory-management
toolkit the paper's collectors come from, reference [24]):

* :class:`BumpAllocator` — contiguous bump-pointer allocation used by the
  copying spaces (SemiSpace halves, the nursery, GenCopy's mature
  semispaces).  Allocation is a pointer increment; exhaustion is detected
  when the pointer would cross the space limit.

* :class:`FreeListAllocator` — segregated-fit free-list allocation used by
  the mark-sweep spaces.  Objects are carved from size-class cells;
  freeing returns cells to their class's free list.  When the virgin
  region is exhausted, a request may be served from a *larger* class's
  free cell (block recycling, as JMTk reassigns empty blocks between size
  classes); the allocator tracks each live cell's actual size so the
  accounting stays exact.  Fragmentation is observable: bytes lost to
  size-class rounding (``internal_waste_bytes``).
"""

from dataclasses import dataclass

from repro.errors import ConfigurationError, SpaceExhausted


@dataclass
class SpaceStats:
    """Cumulative accounting for one heap space."""

    allocations: int = 0
    allocated_bytes: int = 0
    failed_allocations: int = 0


class BumpAllocator:
    """Contiguous bump-pointer allocation over ``[base, base+capacity)``."""

    def __init__(self, capacity_bytes, base_addr=0):
        if capacity_bytes <= 0:
            raise ConfigurationError("space capacity must be positive")
        self.capacity_bytes = int(capacity_bytes)
        self.base_addr = int(base_addr)
        self.cursor = 0
        self.stats = SpaceStats()

    @property
    def used_bytes(self):
        return self.cursor

    @property
    def free_bytes(self):
        return self.capacity_bytes - self.cursor

    def can_allocate(self, size):
        return self.cursor + size <= self.capacity_bytes

    def allocate(self, size):
        """Allocate *size* bytes; return the assigned address.

        Raises :class:`SpaceExhausted` when the space is full — the VM
        catches this and triggers a collection.
        """
        if size <= 0:
            raise ConfigurationError("allocation size must be positive")
        if not self.can_allocate(size):
            self.stats.failed_allocations += 1
            raise SpaceExhausted(
                f"bump space full: {self.cursor}+{size} > "
                f"{self.capacity_bytes}"
            )
        addr = self.base_addr + self.cursor
        self.cursor += int(size)
        self.stats.allocations += 1
        self.stats.allocated_bytes += int(size)
        return addr

    def reset(self):
        """Empty the space (after evacuation)."""
        self.cursor = 0

    def grow(self, additional_bytes):
        """Extend the space (adaptive heap sizing)."""
        if additional_bytes < 0:
            raise ConfigurationError("cannot shrink a bump space")
        self.capacity_bytes += int(additional_bytes)


#: Size classes used by the free-list spaces (bytes).  Geometric spacing
#: like JMTk's segregated lists; requests above the largest class go to a
#: large-object path with no rounding loss.
DEFAULT_SIZE_CLASSES = (
    4096,
    8192,
    16384,
    32768,
    65536,
    131072,
    262144,
)


class FreeListAllocator:
    """Segregated-fit free-list space with block recycling."""

    def __init__(self, capacity_bytes, base_addr=0,
                 size_classes=DEFAULT_SIZE_CLASSES):
        if capacity_bytes <= 0:
            raise ConfigurationError("space capacity must be positive")
        self.capacity_bytes = int(capacity_bytes)
        self.base_addr = int(base_addr)
        self.size_classes = tuple(sorted(size_classes))
        self._virgin_cursor = 0
        self._free_cells = {sc: [] for sc in self.size_classes}
        self._free_large = []   # (cell_bytes, addr) of freed large cells
        self._cell_of = {}      # addr -> cell bytes for every live cell
        self.internal_waste_bytes = 0
        self.live_cell_bytes = 0
        self.stats = SpaceStats()

    def _size_class(self, size):
        for sc in self.size_classes:
            if size <= sc:
                return sc
        return None  # large object

    @property
    def used_bytes(self):
        """Bytes held by live cells (unavailable for new allocation)."""
        return self.live_cell_bytes

    @property
    def free_bytes(self):
        virgin = self.capacity_bytes - self._virgin_cursor
        freed = sum(
            sc * len(cells) for sc, cells in self._free_cells.items()
        )
        freed += sum(cell for cell, _ in self._free_large)
        return virgin + freed

    def can_allocate(self, size):
        sc = self._size_class(size)
        if sc is not None and self._free_cells[sc]:
            return True
        if any(cell >= size for cell, _ in self._free_large):
            return True
        need = sc if sc is not None else size
        return self._virgin_cursor + need <= self.capacity_bytes

    def allocate(self, size):
        """Allocate a cell for *size* bytes; return its address."""
        if size <= 0:
            raise ConfigurationError("allocation size must be positive")
        sc = self._size_class(size)
        if sc is not None:
            if self._free_cells[sc]:
                addr = self._free_cells[sc].pop()
                return self._finish(addr, sc, size)
            if self._virgin_cursor + sc <= self.capacity_bytes:
                addr = self.base_addr + self._virgin_cursor
                self._virgin_cursor += sc
                return self._finish(addr, sc, size)
            # Block recycling: serve the request from a larger class's
            # free cell; the extra bytes are internal waste until freed.
            for bigger in self.size_classes:
                if bigger > sc and self._free_cells[bigger]:
                    addr = self._free_cells[bigger].pop()
                    return self._finish(addr, bigger, size)
            for i, (cell, addr) in enumerate(self._free_large):
                if cell >= size:
                    del self._free_large[i]
                    return self._finish(addr, cell, size)
            scavenged = self._scavenge(size)
            if scavenged is not None:
                return scavenged
            self.stats.failed_allocations += 1
            raise SpaceExhausted(
                f"no free cell of class {sc} and virgin space exhausted"
            )
        # Large object path: first fit over freed large cells, splitting
        # off any usable remainder.
        for i, (cell, addr) in enumerate(self._free_large):
            if cell >= size:
                del self._free_large[i]
                leftover = cell - size
                if leftover >= self.size_classes[0]:
                    self._free_large.append((leftover, addr + size))
                    cell = size
                return self._finish(addr, cell, size)
        if self._virgin_cursor + size <= self.capacity_bytes:
            addr = self.base_addr + self._virgin_cursor
            self._virgin_cursor += size
            return self._finish(addr, size, size)
        scavenged = self._scavenge(size)
        if scavenged is not None:
            return scavenged
        self.stats.failed_allocations += 1
        raise SpaceExhausted("large-object allocation failed")

    def _scavenge(self, size):
        """Last-resort allocation by coalescing free cells.

        Models JMTk's block-level recycling: when neither the virgin
        region nor any single free cell can serve a request, wholly free
        blocks are reclaimed and re-carved.  We approximate by merging
        free cells (largest first) into one serving cell; the merged
        extent is returned to the free pool as a single cell when freed.
        Returns ``None`` when even the aggregate free space is too small.
        """
        pool = []
        gathered = 0
        for sc in reversed(self.size_classes):
            cells = self._free_cells[sc]
            while cells and gathered < size:
                pool.append((sc, cells.pop()))
                gathered += sc
        while self._free_large and gathered < size:
            cell, addr = self._free_large.pop()
            pool.append((cell, addr))
            gathered += cell
        if gathered < size:
            # Put everything back; the caller will raise SpaceExhausted.
            for cell, addr in pool:
                if cell in self._free_cells:
                    self._free_cells[cell].append(addr)
                else:
                    self._free_large.append((cell, addr))
            return None
        addr = pool[0][1]
        return self._finish(addr, gathered, size)

    def _finish(self, addr, cell_bytes, size):
        self._cell_of[addr] = cell_bytes
        self.live_cell_bytes += cell_bytes
        self.internal_waste_bytes += cell_bytes - size
        self.stats.allocations += 1
        self.stats.allocated_bytes += size
        return addr

    def free(self, addr, size):
        """Return the cell containing a dead object to its free list."""
        try:
            cell = self._cell_of.pop(addr)
        except KeyError:
            raise ConfigurationError(
                f"free of unallocated address {addr}"
            ) from None
        if cell in self._free_cells:
            self._free_cells[cell].append(addr)
        else:
            self._free_large.append((cell, addr))
        self.live_cell_bytes -= cell
        self.internal_waste_bytes -= cell - size

    def reset(self):
        """Empty the space entirely."""
        self._virgin_cursor = 0
        self._free_cells = {sc: [] for sc in self.size_classes}
        self._free_large = []
        self._cell_of = {}
        self.internal_waste_bytes = 0
        self.live_cell_bytes = 0

    def grow(self, additional_bytes):
        """Extend the space (adaptive heap sizing): new virgin room
        appears past the current capacity."""
        if additional_bytes < 0:
            raise ConfigurationError("cannot shrink a free-list space")
        self.capacity_bytes += int(additional_bytes)

    @property
    def live_cells(self):
        """Number of cells currently handed out."""
        return len(self._cell_of)

    @property
    def swept_extent_bytes(self):
        """Bytes of address space a sweep must walk (virgin high-water)."""
        return self._virgin_cursor
