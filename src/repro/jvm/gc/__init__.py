"""Garbage collectors.

The paper's Figure 3 taxonomy:

* non-generational: :class:`~repro.jvm.gc.semispace.SemiSpace` (copying)
  and :class:`~repro.jvm.gc.marksweep.MarkSweep`;
* generational: :class:`~repro.jvm.gc.generational.GenCopy` (copying
  nursery + semispace mature) and
  :class:`~repro.jvm.gc.generational.GenMS` (copying nursery + mark-sweep
  mature).

Kaffe's incremental tri-color conservative mark-sweep collector is in
:class:`~repro.jvm.gc.kaffe_gc.KaffeGC`.

Every collector is an entry in the collector registry
(:data:`repro.registry.COLLECTORS`) carrying which VMs implement it;
use :func:`make_collector` to instantiate by the names the paper uses,
or :func:`repro.registry.register_collector` to plug in a new one.
"""

from repro.errors import ConfigurationError, UnknownCollectorError
from repro.jvm.gc.base import CollectionReport, Collector, GCStats
from repro.jvm.gc.generational import GenCopy, GenMS
from repro.jvm.gc.kaffe_gc import KaffeGC
from repro.jvm.gc.marksweep import MarkSweep
from repro.jvm.gc.semispace import SemiSpace
from repro.registry import COLLECTORS as COLLECTOR_REGISTRY
from repro.registry import register_collector

register_collector(
    "SemiSpace", SemiSpace, vms=("jikes",), generational=False,
    description="copying semispace collector",
)
register_collector(
    "MarkSweep", MarkSweep, vms=("jikes",), generational=False,
    description="non-moving mark-sweep collector",
)
register_collector(
    "GenCopy", GenCopy, vms=("jikes",), generational=True,
    description="copying nursery + semispace mature generation",
)
register_collector(
    "GenMS", GenMS, vms=("jikes",), generational=True,
    description="copying nursery + mark-sweep mature generation",
)
register_collector(
    "KaffeGC", KaffeGC, vms=("kaffe",), generational=False,
    description="incremental tri-color conservative mark-sweep",
)

#: Collector classes keyed by the names used in the paper's figures
#: (a read-only view of the registry, kept for convenience).
COLLECTORS = {
    entry.name: entry.obj for entry in COLLECTOR_REGISTRY.entries()
}

#: The four Jikes RVM collectors studied in Figures 6-8, in the
#: figures' order.
JIKES_COLLECTORS = ("SemiSpace", "MarkSweep", "GenCopy", "GenMS")


def make_collector(name, heap_bytes, rng):
    """Instantiate a collector by registered name over ``heap_bytes``."""
    try:
        entry = COLLECTOR_REGISTRY.get(name)
    except ConfigurationError:
        raise UnknownCollectorError(
            f"unknown collector {name!r}; expected one of "
            f"{COLLECTOR_REGISTRY.names()}"
        ) from None
    return entry.obj(heap_bytes, rng)


__all__ = [
    "COLLECTORS",
    "CollectionReport",
    "Collector",
    "GCStats",
    "GenCopy",
    "GenMS",
    "JIKES_COLLECTORS",
    "KaffeGC",
    "MarkSweep",
    "SemiSpace",
    "make_collector",
]
