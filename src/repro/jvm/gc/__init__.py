"""Garbage collectors.

The paper's Figure 3 taxonomy:

* non-generational: :class:`~repro.jvm.gc.semispace.SemiSpace` (copying)
  and :class:`~repro.jvm.gc.marksweep.MarkSweep`;
* generational: :class:`~repro.jvm.gc.generational.GenCopy` (copying
  nursery + semispace mature) and
  :class:`~repro.jvm.gc.generational.GenMS` (copying nursery + mark-sweep
  mature).

Kaffe's incremental tri-color conservative mark-sweep collector is in
:class:`~repro.jvm.gc.kaffe_gc.KaffeGC`.

Use :func:`make_collector` to instantiate by the names the paper uses.
"""

from repro.errors import UnknownCollectorError
from repro.jvm.gc.base import CollectionReport, Collector, GCStats
from repro.jvm.gc.generational import GenCopy, GenMS
from repro.jvm.gc.kaffe_gc import KaffeGC
from repro.jvm.gc.marksweep import MarkSweep
from repro.jvm.gc.semispace import SemiSpace

#: Collector registry keyed by the names used in the paper's figures.
COLLECTORS = {
    "SemiSpace": SemiSpace,
    "MarkSweep": MarkSweep,
    "GenCopy": GenCopy,
    "GenMS": GenMS,
    "KaffeGC": KaffeGC,
}

#: The four Jikes RVM collectors studied in Figures 6-8.
JIKES_COLLECTORS = ("SemiSpace", "MarkSweep", "GenCopy", "GenMS")


def make_collector(name, heap_bytes, rng):
    """Instantiate a collector by paper name over a ``heap_bytes`` heap."""
    try:
        cls = COLLECTORS[name]
    except KeyError:
        raise UnknownCollectorError(
            f"unknown collector {name!r}; expected one of "
            f"{sorted(COLLECTORS)}"
        ) from None
    return cls(heap_bytes, rng)


__all__ = [
    "COLLECTORS",
    "CollectionReport",
    "Collector",
    "GCStats",
    "GenCopy",
    "GenMS",
    "JIKES_COLLECTORS",
    "KaffeGC",
    "MarkSweep",
    "SemiSpace",
    "make_collector",
]
