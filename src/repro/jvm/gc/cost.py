"""Collection work -> execution activities.

A :class:`~repro.jvm.gc.base.CollectionReport` describes *what* a
collection did in bytes; this module converts that work into
:class:`~repro.hardware.activity.Activity` records (instructions plus
memory behavior) that the platform's execution model can account into
cycles and power.

The per-byte instruction constants fold in per-object costs at the
~56-byte average real-object size (headers, forwarding pointers, mark
bits), matching the throughput range of the era's collectors (a few
hundred MB/s traced or copied on a 1.6 GHz Pentium M).

Each collection is split into its classical phases — root scan + trace,
copy/evacuate, sweep — because the phases have different
microarchitectural characters and hence different *power* signatures;
this phase structure is what gives the garbage collector its distinctive
low-power profile on the P6 platform (Section VI-C) and produces the
copy-burst peaks visible for allocation-heavy benchmarks (the paper's
`_209_db`, whose GC sets the peak-power envelope at 17.5 W).
"""

from dataclasses import dataclass

from repro.hardware.activity import Activity
from repro.hardware.cache import MemoryBehavior
from repro.jvm.components import Component
from repro.jvm.profiles import profile_for

#: Instructions per byte traced (pointer chase + mark + field scan;
#: includes per-object header work at the ~56-byte mean object size).
TRACE_INSTR_PER_BYTE = 2.2

#: Instructions per byte copied (memcpy + forwarding + fixup).
COPY_INSTR_PER_BYTE = 1.8

#: Instructions per byte of address space swept (side-metadata walk).
SWEEP_INSTR_PER_BYTE = 0.055

#: Instructions per reference edge traversed.
EDGE_INSTR = 28

#: Fixed per-collection overhead (stop-the-world handshake, root
#: enumeration, space flipping).
COLLECTION_FIXED_INSTR = 350_000

#: The sweep phase reads packed metadata, not the objects themselves;
#: its data footprint is the swept extent divided by this factor.
SWEEP_METADATA_RATIO = 16


@dataclass(frozen=True)
class GCBurstProfile:
    """Optional benchmark-specific burst inside the trace phase.

    Models dense root-array scans (e.g. `_209_db`'s resident database
    index): a short, high-ILP, prefetch-friendly sub-phase with elevated
    power.  ``fraction`` of trace instructions run in the burst.
    """

    fraction: float = 0.0
    cpi_scale: float = 0.45
    mix: float = 1.12


NO_BURST = GCBurstProfile(fraction=0.0)


class GCCostModel:
    """Converts collection reports into activities for one platform."""

    def __init__(self, platform_name, burst=NO_BURST):
        self.platform_name = platform_name
        self.burst = burst

    def activities(self, report):
        """Phase activities for one collection, in execution order."""
        out = []
        trace_instr = (
            report.traced_bytes * TRACE_INSTR_PER_BYTE
            + report.edges * EDGE_INSTR
            + COLLECTION_FIXED_INSTR
        )
        trace_footprint = max(report.footprint_bytes, report.traced_bytes)

        burst_instr = int(trace_instr * self.burst.fraction)
        main_instr = int(trace_instr) - burst_instr
        profile = profile_for(self.platform_name, "gc_trace")
        out.append(
            Activity(
                component=Component.GC,
                instructions=main_instr,
                behavior=MemoryBehavior(
                    footprint_bytes=trace_footprint,
                    hot_bytes=profile.hot_bytes,
                    locality=profile.locality,
                    spatial_factor=profile.spatial,
                ),
                refs_per_instr=profile.refs_per_instr,
                l1_miss_rate=profile.l1_miss_rate,
                mix_factor=profile.mix,
                cpi_scale=profile.cpi_scale,
                tag=f"gc:{report.kind}:trace",
            )
        )
        if burst_instr > 0:
            out.append(
                Activity(
                    component=Component.GC,
                    instructions=burst_instr,
                    behavior=MemoryBehavior(
                        footprint_bytes=trace_footprint,
                        hot_bytes=profile.hot_bytes,
                        locality=0.45,
                        spatial_factor=0.25,
                    ),
                    refs_per_instr=profile.refs_per_instr,
                    l1_miss_rate=profile.l1_miss_rate * 0.6,
                    mix_factor=self.burst.mix,
                    cpi_scale=self.burst.cpi_scale,
                    tag=f"gc:{report.kind}:trace-burst",
                )
            )

        if report.copied_bytes > 0:
            profile = profile_for(self.platform_name, "gc_copy")
            out.append(
                Activity(
                    component=Component.GC,
                    instructions=int(
                        report.copied_bytes * COPY_INSTR_PER_BYTE
                    ),
                    behavior=MemoryBehavior(
                        footprint_bytes=report.copied_bytes * 2,
                        hot_bytes=profile.hot_bytes,
                        locality=profile.locality,
                        spatial_factor=profile.spatial,
                    ),
                    refs_per_instr=profile.refs_per_instr,
                    l1_miss_rate=profile.l1_miss_rate,
                    mix_factor=profile.mix,
                    cpi_scale=profile.cpi_scale,
                    tag=f"gc:{report.kind}:copy",
                )
            )

        if report.swept_bytes > 0:
            profile = profile_for(self.platform_name, "gc_sweep")
            out.append(
                Activity(
                    component=Component.GC,
                    instructions=int(
                        report.swept_bytes * SWEEP_INSTR_PER_BYTE
                    ),
                    behavior=MemoryBehavior(
                        footprint_bytes=max(
                            report.swept_bytes // SWEEP_METADATA_RATIO, 1
                        ),
                        hot_bytes=profile.hot_bytes,
                        locality=profile.locality,
                        spatial_factor=profile.spatial,
                    ),
                    refs_per_instr=profile.refs_per_instr,
                    l1_miss_rate=profile.l1_miss_rate,
                    mix_factor=profile.mix,
                    cpi_scale=profile.cpi_scale,
                    tag=f"gc:{report.kind}:sweep",
                )
            )
        return out

    def total_instructions(self, report):
        """Instruction total for a report (convenience for tests)."""
        return sum(a.instructions for a in self.activities(report))
