"""SemiSpace copying collector.

The heap is divided into two halves (Section III-B): allocation bumps
through the *from* half; when it fills, live objects are traced from the
roots and copied into the *to* half, and the halves swap roles.  Only half
the heap is ever usable for application data — the discipline the paper
shows being punished at small heap sizes (Figure 7) and rewarded by
compaction-improved mutator locality at large ones (`_209_db`).
"""

from repro.jvm.gc.base import CollectionReport, Collector
from repro.jvm.heap import BumpAllocator
from repro.jvm.objects import SPACE_DEFAULT, trace_closure


class SemiSpace(Collector):
    """Two-space copying collector."""

    name = "SemiSpace"
    is_generational = False
    #: Copying compacts the live set, improving the mutator's locality.
    mutator_locality_delta = 0.02
    barrier_overhead = 0.0

    def __init__(self, heap_bytes, rng):
        super().__init__(heap_bytes, rng)
        half = heap_bytes // 2
        self._halves = (
            BumpAllocator(half, base_addr=0),
            BumpAllocator(half, base_addr=half),
        )
        self._from = 0  # index of the half currently allocated into

    @property
    def from_space(self):
        return self._halves[self._from]

    @property
    def to_space(self):
        return self._halves[1 - self._from]

    def allocate(self, size, birth, death):
        from repro.jvm.objects import SimObject

        addr = self.from_space.allocate(size)  # may raise SpaceExhausted
        obj = SimObject(size, birth, death, space=SPACE_DEFAULT)
        obj.addr = addr
        return obj

    def collect(self, roots, now):
        """Trace from the roots and evacuate survivors into to-space."""
        used_before = self.from_space.used_bytes
        live, live_bytes, edges = trace_closure(roots.live_objects())

        to_space = self.to_space
        to_space.reset()
        copied = 0
        for obj in live:
            obj.addr = to_space.allocate(obj.size)
            obj.age += 1
            copied += obj.size
        self.from_space.reset()
        self._from = 1 - self._from

        report = CollectionReport(
            kind="full",
            collector=self.name,
            traced_bytes=live_bytes,
            traced_objects=len(live),
            edges=edges,
            copied_bytes=copied,
            swept_bytes=0,
            freed_bytes=max(used_before - copied, 0),
            live_bytes_after=copied,
            footprint_bytes=used_before + copied,
        )
        self.stats.absorb(report)
        return [report]

    supports_growth = True

    def grow(self, additional_bytes):
        """Grow both semispaces by half the grant each."""
        half = int(additional_bytes) // 2
        self.heap_bytes += half * 2
        for space in self._halves:
            space.grow(half)

    def used_bytes(self):
        return self.from_space.used_bytes

    def usable_heap_bytes(self):
        return self.heap_bytes // 2
