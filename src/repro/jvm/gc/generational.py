"""Generational collectors: GenCopy and GenMS.

New objects are allocated into a *nursery*; when it fills, a **minor**
collection traces only the nursery (from the roots plus the write
barrier's remembered set) and promotes survivors into the *mature* space
(Section III-B).  The two collectors differ in the mature-space
discipline: GenCopy manages it as a semispace pair, GenMS as a mark-sweep
free-list space.  When the mature space cannot absorb the expected
promotion, a **full-heap** collection runs instead.

The write barrier has two modeled costs, both of which the paper
discusses:

* a fractional mutator instruction overhead (``barrier_overhead``) — the
  "slight performance overhead of write barriers" that lets SemiSpace edge
  out GenCopy on `_209_db` at 128 MB (Section VI-B);
* *nepotism*: remembered-set entries whose nursery target has already died
  still force promotion, tenuring garbage that only the next full-heap
  collection reclaims.
"""

from repro.errors import SpaceExhausted
from repro.jvm.gc.base import CollectionReport, Collector
from repro.jvm.heap import BumpAllocator, FreeListAllocator
from repro.jvm.objects import (
    SPACE_MATURE,
    SPACE_NURSERY,
    SimObject,
    trace_closure,
)
from repro.units import MB

#: Fraction of a mark-sweep mature space consumed by metadata.
METADATA_FRACTION = 0.05

#: Bound on how many recently promoted objects the write barrier can pick
#: mutation sources from.
PROMOTED_RING_SIZE = 128


def default_nursery_bytes(heap_bytes):
    """Bounded-nursery sizing: an eighth of the heap, clamped to
    [1 MB, 4 MB] — the classic bounded-nursery configuration, leaving
    the mature semispaces enough room at the paper's smallest heaps."""
    return max(1 * MB, min(heap_bytes // 8, 4 * MB))


class _GenerationalBase(Collector):
    """Shared nursery + remembered-set machinery."""

    is_generational = True
    barrier_overhead = 0.015
    #: Mature-space headroom factor required before attempting promotion
    #: (mark-sweep matures need slack for size-class rounding).
    PROMOTION_HEADROOM = 1.0

    def __init__(self, heap_bytes, rng, nursery_bytes=None):
        super().__init__(heap_bytes, rng)
        self.nursery_bytes = (
            default_nursery_bytes(heap_bytes)
            if nursery_bytes is None
            else int(nursery_bytes)
        )
        self.nursery = BumpAllocator(self.nursery_bytes, base_addr=0)
        self.remset = []           # (source, target) pairs
        self._promoted_ring = []   # recent mature objects (barrier sources)

    # -- allocation ---------------------------------------------------

    def allocate(self, size, birth, death):
        if size > self.nursery.capacity_bytes:
            # Pretenure: objects too large for the nursery go straight to
            # the mature space.
            addr = self._mature_allocate(size)
            obj = SimObject(size, birth, death, space=SPACE_MATURE)
            obj.addr = addr
            self._note_promoted(obj)
            return obj
        addr = self.nursery.allocate(size)  # may raise SpaceExhausted
        obj = SimObject(size, birth, death, space=SPACE_NURSERY)
        obj.addr = addr
        return obj

    # -- write barrier --------------------------------------------------

    def record_mutation(self, young_obj):
        """A tracked pointer store installed a reference to *young_obj*
        from some mature object."""
        if young_obj.space != SPACE_NURSERY or not self._promoted_ring:
            return
        idx = int(self.rng.integers(0, len(self._promoted_ring)))
        source = self._promoted_ring[idx]
        self.remset.append((source, young_obj))
        self.stats.write_barrier_entries += 1

    def _note_promoted(self, obj):
        self._promoted_ring.append(obj)
        if len(self._promoted_ring) > PROMOTED_RING_SIZE:
            self._promoted_ring = self._promoted_ring[-PROMOTED_RING_SIZE:]

    # -- collection -----------------------------------------------------

    def collect(self, roots, now):
        nursery_roots = [
            o for o in roots.live_objects() if o.space == SPACE_NURSERY
        ]
        remset_targets = [
            dst for _, dst in self.remset if dst.space == SPACE_NURSERY
        ]
        survivors, survivor_bytes, edges = trace_closure(
            nursery_roots + remset_targets, include={SPACE_NURSERY}
        )
        # Promotion needs headroom beyond the raw byte count (size-class
        # rounding in a mark-sweep mature space); fall back to a full
        # collection when the mature space cannot absorb the survivors,
        # or when promotion fails partway despite the estimate.
        if self._mature_free_bytes() >= int(
            survivor_bytes * self.PROMOTION_HEADROOM
        ):
            try:
                return [self._minor(survivors, survivor_bytes, edges, now)]
            except SpaceExhausted:
                return [self._full(roots, now)]
        return [self._full(roots, now)]

    def _minor(self, survivors, survivor_bytes, edges, now):
        nursery_used = self.nursery.used_bytes
        nepotism = 0
        for obj in survivors:
            addr = self._mature_allocate(obj.size)
            obj.addr = addr
            obj.space = SPACE_MATURE
            obj.age += 1
            self._note_promoted(obj)
            if not obj.is_live(now):
                nepotism += obj.size
        self.nursery.reset()
        self.remset.clear()

        report = CollectionReport(
            kind="minor",
            collector=self.name,
            traced_bytes=survivor_bytes,
            traced_objects=len(survivors),
            edges=edges,
            copied_bytes=survivor_bytes,
            swept_bytes=0,
            freed_bytes=max(nursery_used - survivor_bytes, 0),
            live_bytes_after=self.used_bytes(),
            promoted_bytes=survivor_bytes,
            nepotism_bytes=nepotism,
            footprint_bytes=nursery_used + survivor_bytes,
        )
        self.stats.absorb(report)
        return report

    # -- subclass protocol ------------------------------------------------

    def _mature_allocate(self, size):
        raise NotImplementedError

    def _mature_free_bytes(self):
        raise NotImplementedError

    def _full(self, roots, now):
        raise NotImplementedError


class GenCopy(_GenerationalBase):
    """Generational collector with a semispace (copying) mature space."""

    name = "GenCopy"
    #: Both the nursery and the mature space compact.
    mutator_locality_delta = 0.02

    def __init__(self, heap_bytes, rng, nursery_bytes=None):
        super().__init__(heap_bytes, rng, nursery_bytes=nursery_bytes)
        mature_total = heap_bytes - self.nursery_bytes
        half = mature_total // 2
        self._halves = (
            BumpAllocator(half, base_addr=self.nursery_bytes),
            BumpAllocator(half, base_addr=self.nursery_bytes + half),
        )
        self._from = 0

    @property
    def mature_from(self):
        return self._halves[self._from]

    @property
    def mature_to(self):
        return self._halves[1 - self._from]

    def _mature_allocate(self, size):
        return self.mature_from.allocate(size)

    def _mature_free_bytes(self):
        return self.mature_from.free_bytes

    def _full(self, roots, now):
        """Evacuate the entire heap (nursery + mature) into to-space."""
        used_before = self.nursery.used_bytes + self.mature_from.used_bytes
        live, live_bytes, edges = trace_closure(roots.live_objects())

        to_space = self.mature_to
        to_space.reset()
        copied = 0
        for obj in live:
            obj.addr = to_space.allocate(obj.size)  # SpaceExhausted => OOM
            obj.space = SPACE_MATURE
            obj.age += 1
            copied += obj.size
        self.nursery.reset()
        self.mature_from.reset()
        self._from = 1 - self._from
        self.remset.clear()
        self._promoted_ring = [o for o in self._promoted_ring if o in live]

        report = CollectionReport(
            kind="full",
            collector=self.name,
            traced_bytes=live_bytes,
            traced_objects=len(live),
            edges=edges,
            copied_bytes=copied,
            swept_bytes=0,
            freed_bytes=max(used_before - copied, 0),
            live_bytes_after=copied,
            footprint_bytes=used_before + copied,
        )
        self.stats.absorb(report)
        return report

    def used_bytes(self):
        return self.nursery.used_bytes + self.mature_from.used_bytes

    def usable_heap_bytes(self):
        return self.nursery_bytes + self.mature_from.capacity_bytes


class GenMS(_GenerationalBase):
    """Generational collector with a mark-sweep mature space."""

    name = "GenMS"
    PROMOTION_HEADROOM = 1.2
    #: The nursery compacts, the mature space does not: net small benefit.
    mutator_locality_delta = 0.01

    def __init__(self, heap_bytes, rng, nursery_bytes=None):
        super().__init__(heap_bytes, rng, nursery_bytes=nursery_bytes)
        mature_total = int(
            (heap_bytes - self.nursery_bytes) * (1.0 - METADATA_FRACTION)
        )
        self._mature = FreeListAllocator(
            mature_total, base_addr=self.nursery_bytes
        )
        self._mature_objects = []

    def _mature_allocate(self, size):
        addr = self._mature.allocate(size)
        return addr

    def _mature_free_bytes(self):
        return self._mature.free_bytes

    def _note_promoted(self, obj):
        super()._note_promoted(obj)
        self._mature_objects.append(obj)

    def _full(self, roots, now):
        """Mark the whole heap; sweep the mature space; promote nursery
        survivors into the (just swept) free lists."""
        used_before = self.nursery.used_bytes + self._mature.used_bytes
        live, live_bytes, edges = trace_closure(roots.live_objects())
        live_ids = {id(o) for o in live}

        # Sweep the mature space.
        survivors = []
        freed = 0
        for obj in self._mature_objects:
            if id(obj) in live_ids:
                obj.age += 1
                survivors.append(obj)
            else:
                self._mature.free(obj.addr, obj.size)
                freed += obj.size
        self._mature_objects = survivors

        # Promote nursery survivors.
        promoted = 0
        for obj in live:
            if obj.space == SPACE_NURSERY:
                obj.addr = self._mature.allocate(obj.size)  # may raise: OOM
                obj.space = SPACE_MATURE
                obj.age += 1
                self._mature_objects.append(obj)
                promoted += obj.size
        freed += max(self.nursery.used_bytes - promoted, 0)
        self.nursery.reset()
        self.remset.clear()
        self._promoted_ring = [
            o for o in self._promoted_ring if id(o) in live_ids
        ]

        report = CollectionReport(
            kind="full",
            collector=self.name,
            traced_bytes=live_bytes,
            traced_objects=len(live),
            edges=edges,
            copied_bytes=promoted,
            swept_bytes=self._mature.swept_extent_bytes,
            freed_bytes=freed,
            live_bytes_after=live_bytes,
            promoted_bytes=promoted,
            footprint_bytes=used_before,
        )
        self.stats.absorb(report)
        return report

    def used_bytes(self):
        return self.nursery.used_bytes + self._mature.used_bytes

    def usable_heap_bytes(self):
        return self.nursery_bytes + self._mature.capacity_bytes
