"""Collector interface and shared accounting.

A collector owns the heap's spaces and allocators.  The VM drives it
through a narrow protocol:

* :meth:`Collector.allocate` — place a new object; raises
  :class:`~repro.errors.SpaceExhausted` when a collection is needed;
* :meth:`Collector.collect` — perform the collection(s) required to make
  progress, returning one :class:`CollectionReport` per collection phase
  (a generational collector may report a minor collection followed by a
  full-heap collection);
* :meth:`Collector.record_mutation` — the write-barrier hook, called by
  the VM for tracked pointer stores.

Reports carry the *work done in bytes* (traced, copied, swept) so the
cost model (:mod:`repro.jvm.gc.cost`) can convert collections into
microarchitectural activities.
"""

from abc import ABC, abstractmethod
from dataclasses import dataclass


@dataclass
class CollectionReport:
    """What one collection actually did (ground truth, in bytes)."""

    kind: str                 # "minor" or "full"
    collector: str
    traced_bytes: int = 0     # live bytes visited by the trace
    traced_objects: int = 0   # cohorts visited
    edges: int = 0            # reference edges traversed
    copied_bytes: int = 0     # bytes evacuated/promoted
    swept_bytes: int = 0      # address-space extent walked by sweep
    freed_bytes: int = 0      # bytes reclaimed
    live_bytes_after: int = 0
    promoted_bytes: int = 0   # minor collections: bytes tenured
    nepotism_bytes: int = 0   # dead bytes tenured via stale remset entries
    footprint_bytes: int = 0  # data footprint for the cache model

    @property
    def survival_rate(self):
        """Fraction of the collected region that survived."""
        denom = self.freed_bytes + self.copied_bytes
        if self.kind == "full" and self.copied_bytes == 0:
            denom = self.freed_bytes + self.traced_bytes
        if denom <= 0:
            return 0.0
        numer = self.copied_bytes if self.copied_bytes else self.traced_bytes
        return numer / denom


@dataclass
class GCStats:
    """Cumulative collector statistics over a run."""

    collections: int = 0
    minor_collections: int = 0
    full_collections: int = 0
    traced_bytes: int = 0
    copied_bytes: int = 0
    swept_bytes: int = 0
    freed_bytes: int = 0
    promoted_bytes: int = 0
    nepotism_bytes: int = 0
    write_barrier_entries: int = 0

    def absorb(self, report):
        """Fold one :class:`CollectionReport` into the totals."""
        self.collections += 1
        if report.kind == "minor":
            self.minor_collections += 1
        else:
            self.full_collections += 1
        self.traced_bytes += report.traced_bytes
        self.copied_bytes += report.copied_bytes
        self.swept_bytes += report.swept_bytes
        self.freed_bytes += report.freed_bytes
        self.promoted_bytes += report.promoted_bytes
        self.nepotism_bytes += report.nepotism_bytes


class Collector(ABC):
    """Base class for all collectors."""

    #: Paper name ("SemiSpace", "GenMS", ...); set by subclasses.
    name = "abstract"
    #: Whether the collector segregates young from old objects.
    is_generational = False
    #: Additive adjustment to the application's locality parameter.
    #: Copying collectors compact live data, improving mutator locality
    #: (the paper's `_209_db` discussion, Section VI-B); free-list
    #: collectors scatter it slightly.
    mutator_locality_delta = 0.0
    #: Fractional instruction overhead the write barrier imposes on the
    #: mutator (zero for non-generational collectors).
    barrier_overhead = 0.0

    def __init__(self, heap_bytes, rng):
        self.heap_bytes = int(heap_bytes)
        self.rng = rng
        self.stats = GCStats()

    # -- allocation --------------------------------------------------

    @abstractmethod
    def allocate(self, size, birth, death):
        """Allocate an object; raise SpaceExhausted if a GC is needed."""

    # -- collection --------------------------------------------------

    @abstractmethod
    def collect(self, roots, now):
        """Collect until allocation can proceed; return list of reports."""

    # -- write barrier ------------------------------------------------

    def record_mutation(self, young_obj):
        """Write-barrier hook for a tracked pointer store whose target is
        *young_obj*.  Non-generational collectors ignore it."""

    # -- adaptive sizing -------------------------------------------------

    #: Whether :meth:`grow` is implemented.
    supports_growth = False

    def grow(self, additional_bytes):
        """Extend the heap at run time (adaptive heap sizing; the
        research direction of the paper's reference [1]).  Collectors
        that cannot grow raise :class:`ConfigurationError`."""
        from repro.errors import ConfigurationError

        raise ConfigurationError(
            f"{self.name} does not support heap growth"
        )

    # -- introspection -------------------------------------------------

    @abstractmethod
    def used_bytes(self):
        """Bytes currently occupied in the collector's spaces."""

    @abstractmethod
    def usable_heap_bytes(self):
        """Bytes of the heap actually available for application data
        (half for semispace disciplines, nearly all for mark-sweep)."""

    def describe(self):
        """One-line human description used in reports."""
        return (
            f"{self.name} (heap {self.heap_bytes // (1024 * 1024)} MB, "
            f"usable {self.usable_heap_bytes() // (1024 * 1024)} MB)"
        )
