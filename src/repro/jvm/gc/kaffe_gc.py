"""Kaffe's garbage collector.

Kaffe 1.1.4 uses an *incremental, conservative, tri-color* mark-and-sweep
collector (Section IV-A).  Three behaviors distinguish it from the Jikes
RVM's MarkSweep and are modeled here:

* **Tri-color incremental marking** — marking proceeds in bounded
  increments (gray-set draining) interleaved with allocation; a final
  stop-the-world increment finishes the cycle when allocation fails.  Each
  increment's work is reported separately so the measurement layer sees
  Kaffe's characteristic short GC bursts rather than long pauses.
* **Conservative scanning** — values on the stack that merely *look like*
  pointers pin dead objects.  A small fraction of dead objects is retained
  per cycle and re-examined at the next cycle.
* **Snapshot write barrier** — pointer stores during an active mark cycle
  shade their targets gray, so concurrently installed references are not
  lost (modeled as extra gray insertions, i.e. extra trace work).
"""

from repro.jvm.gc.base import CollectionReport, Collector
from repro.jvm.heap import FreeListAllocator
from repro.jvm.objects import SPACE_DEFAULT, SimObject, trace_closure

#: Fraction of the heap consumed by collector metadata.
METADATA_FRACTION = 0.05

#: Probability that a dead object is conservatively pinned in a cycle.
DEFAULT_PIN_RATE = 0.02

#: Probability that a previously pinned object is released in a later cycle.
PIN_RELEASE_RATE = 0.5

#: Tri-color bookkeeping inflates per-byte trace work by this factor.
TRICOLOR_OVERHEAD = 1.45


class KaffeGC(Collector):
    """Incremental conservative tri-color mark-sweep collector."""

    name = "KaffeGC"
    is_generational = False
    mutator_locality_delta = -0.01
    #: The snapshot barrier is cheap (active only during mark cycles).
    barrier_overhead = 0.005

    def __init__(self, heap_bytes, rng, pin_rate=DEFAULT_PIN_RATE):
        super().__init__(heap_bytes, rng)
        usable = int(heap_bytes * (1.0 - METADATA_FRACTION))
        self._space = FreeListAllocator(usable)
        self._objects = []
        self._pinned = []
        self.pin_rate = pin_rate
        self.barrier_shades = 0

    def allocate(self, size, birth, death):
        addr = self._space.allocate(size)  # may raise SpaceExhausted
        obj = SimObject(size, birth, death, space=SPACE_DEFAULT)
        obj.addr = addr
        self._objects.append(obj)
        return obj

    def record_mutation(self, young_obj):
        """Snapshot barrier: shade the stored-to target gray.  Counted as
        extra marking work in the next cycle."""
        self.barrier_shades += 1

    def collect(self, roots, now):
        """Run a complete mark/sweep cycle (all increments)."""
        used_before = self._space.used_bytes
        live, live_bytes, edges = trace_closure(roots.live_objects())
        live_ids = {id(o) for o in live}

        # Conservative retention: previously pinned dead objects may be
        # released this cycle; newly dead objects may be pinned.
        still_pinned = []
        for obj in self._pinned:
            if self.rng.random() >= PIN_RELEASE_RATE:
                still_pinned.append(obj)
        pinned_ids = {id(o) for o in still_pinned}

        survivors = []
        freed = 0
        pinned_bytes = 0
        for obj in self._objects:
            if id(obj) in live_ids:
                obj.age += 1
                survivors.append(obj)
            elif id(obj) in pinned_ids:
                survivors.append(obj)
                pinned_bytes += obj.size
            elif (
                obj.pinned is False
                and self.rng.random() < self.pin_rate
            ):
                obj.pinned = True
                still_pinned.append(obj)
                survivors.append(obj)
                pinned_bytes += obj.size
            else:
                self._space.free(obj.addr, obj.size)
                freed += obj.size
        self._objects = survivors
        self._pinned = [o for o in still_pinned if id(o) not in live_ids]
        for obj in list(self._pinned):
            if id(obj) in live_ids:
                obj.pinned = False

        # Barrier-shaded targets add trace work (they were re-scanned).
        shade_work = self.barrier_shades
        self.barrier_shades = 0
        traced = int(live_bytes * TRICOLOR_OVERHEAD) + shade_work * 64

        report = CollectionReport(
            kind="full",
            collector=self.name,
            traced_bytes=traced,
            traced_objects=len(live),
            edges=edges + shade_work,
            copied_bytes=0,
            swept_bytes=self._space.swept_extent_bytes,
            freed_bytes=freed,
            live_bytes_after=live_bytes + pinned_bytes,
            nepotism_bytes=pinned_bytes,
            footprint_bytes=used_before,
        )
        self.stats.absorb(report)
        return [report]

    def used_bytes(self):
        return self._space.used_bytes

    def usable_heap_bytes(self):
        return self._space.capacity_bytes

    @property
    def conservatively_retained_bytes(self):
        """Bytes currently retained only because of conservative pinning."""
        return sum(o.size for o in self._pinned)
