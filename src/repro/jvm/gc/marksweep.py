"""Mark-and-sweep collector.

Objects are allocated from segregated free lists of fixed-size cells
(Section III-B) and are never moved.  Collection marks the transitive
closure of the roots and sweeps the occupied extent of the space,
returning dead cells to their free lists.  Nearly the whole heap is usable
for application data — the reason the paper finds non-generational
mark-sweep competitive with the copying disciplines at large heaps — but
the lack of compaction costs the mutator a little locality.
"""

from repro.jvm.gc.base import CollectionReport, Collector
from repro.jvm.heap import FreeListAllocator
from repro.jvm.objects import SPACE_DEFAULT, trace_closure

#: Fraction of the heap consumed by free-list/side metadata.
METADATA_FRACTION = 0.05


class MarkSweep(Collector):
    """Non-moving mark-sweep collector over a segregated free list."""

    name = "MarkSweep"
    is_generational = False
    #: Free-list allocation scatters contemporaneous objects.
    mutator_locality_delta = -0.01
    barrier_overhead = 0.0

    def __init__(self, heap_bytes, rng):
        super().__init__(heap_bytes, rng)
        usable = int(heap_bytes * (1.0 - METADATA_FRACTION))
        self._space = FreeListAllocator(usable)
        self._objects = []

    def allocate(self, size, birth, death):
        from repro.jvm.objects import SimObject

        addr = self._space.allocate(size)  # may raise SpaceExhausted
        obj = SimObject(size, birth, death, space=SPACE_DEFAULT)
        obj.addr = addr
        self._objects.append(obj)
        return obj

    def collect(self, roots, now):
        """Mark from the roots, then sweep the occupied extent."""
        used_before = self._space.used_bytes
        live, live_bytes, edges = trace_closure(roots.live_objects())
        live_ids = {id(o) for o in live}

        survivors = []
        freed = 0
        for obj in self._objects:
            if id(obj) in live_ids:
                obj.age += 1
                survivors.append(obj)
            else:
                self._space.free(obj.addr, obj.size)
                freed += obj.size
        self._objects = survivors

        report = CollectionReport(
            kind="full",
            collector=self.name,
            traced_bytes=live_bytes,
            traced_objects=len(live),
            edges=edges,
            copied_bytes=0,
            swept_bytes=self._space.swept_extent_bytes,
            freed_bytes=freed,
            live_bytes_after=live_bytes,
            footprint_bytes=used_before,
        )
        self.stats.absorb(report)
        return [report]

    supports_growth = True

    def grow(self, additional_bytes):
        """Grow the free-list space (less the metadata share)."""
        usable = int(additional_bytes * (1.0 - METADATA_FRACTION))
        self.heap_bytes += int(additional_bytes)
        self._space.grow(usable)

    def used_bytes(self):
        return self._space.used_bytes

    def usable_heap_bytes(self):
        return self._space.capacity_bytes

    @property
    def fragmentation_bytes(self):
        """Bytes lost to size-class rounding (internal fragmentation)."""
        return self._space.internal_waste_bytes
