"""The integrated virtual machines.

:class:`JikesRVM` models the IBM Jikes RVM 2.4.1 (Section IV-A): system
classes merged into the boot image, a fast baseline compiler on first
invocation, an adaptive optimization system recompiling hot methods with
the optimizing compiler on its own thread, and a choice of four garbage
collectors.  Component IDs are written by the thread scheduler.

:class:`KaffeVM` models Kaffe 1.1.4: a clean-room portable VM configured
with JIT compilation and Unix threads, lazy class loading of both user
*and* system classes, and an incremental conservative mark-sweep
collector.  Component IDs are written at component entry and exit.

A VM executes a :class:`~repro.workloads.generator.WorkloadRun` slice by
slice; everything it does — class loads, compilations, application
execution, allocation, and the collections allocation forces — flows
through the instrumented scheduler into a ground-truth timeline that the
measurement infrastructure then samples.
"""

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import (
    ConfigurationError,
    OutOfMemoryError,
    SpaceExhausted,
    UnknownCollectorError,
)
from repro.hardware.activity import Activity
from repro.hardware.cache import MemoryBehavior
from repro.jvm.classloader import KAFFE_LOADER_FACTOR, ClassLoader
from repro.jvm.compiler import (
    AdaptiveOptimizationSystem,
    BaselineCompiler,
    KaffeJIT,
    OptimizingCompiler,
)
from repro.jvm.components import Component
from repro.jvm.gc import JIKES_COLLECTORS, make_collector
from repro.jvm.gc.cost import GCBurstProfile, GCCostModel
from repro.jvm.objects import ReferenceFactory, RootSet
from repro.jvm.profiles import profile_for
from repro.jvm.scheduler import InstrumentedScheduler
from repro.obs import NULL_OBS
from repro.registry import VMS as VM_REGISTRY
from repro.registry import register_vm
from repro.units import MB
from repro.workloads import get_benchmark
from repro.workloads.generator import WorkloadRun

#: How many just-allocated objects are candidates for tracked mutations.
MUTATION_RING = 16

#: Application data footprint relative to the live set (fragmentation,
#: stacks, code).
APP_FOOTPRINT_FACTOR = 1.3


@dataclass
class RunResult:
    """Everything a completed VM run produced (ground truth side)."""

    benchmark: str
    vm_name: str
    platform_name: str
    collector_name: str
    heap_mb: int
    seed: int
    timeline: object
    gc_stats: object
    collector: object
    classloader: object
    workload: object
    port_writes: int
    perturbation_cycles: int
    repetitions: int = 1
    opt_compiles: int = 0
    base_compiles: int = 0
    jit_compiles: int = 0

    @property
    def duration_s(self):
        """Ground-truth wall-clock duration of the run."""
        return self.timeline.duration_s

    def component_seconds(self):
        return self.timeline.component_seconds()

    def cpu_energy_j(self):
        return self.timeline.cpu_energy_j()

    def mem_energy_j(self):
        return self.timeline.mem_energy_j()

    def summary(self):
        """One-paragraph human-readable description."""
        comp_s = self.component_seconds()
        total_s = self.duration_s
        parts = []
        for cid in sorted(comp_s, key=lambda c: -comp_s[c]):
            name = Component.from_port_value(cid).short_name
            parts.append(f"{name} {100 * comp_s[cid] / total_s:.1f}%")
        return (
            f"{self.benchmark} on {self.vm_name}/{self.platform_name} "
            f"({self.collector_name}, {self.heap_mb} MB): "
            f"{total_s:.2f} s, {self.cpu_energy_j():.1f} J CPU, "
            f"{self.mem_energy_j():.2f} J memory; time share "
            + ", ".join(parts)
        )


class BaseVM:
    """Shared machinery of both virtual machines."""

    name = "base"
    style = "jikes"
    lazy_system_classes = False
    loader_factor = 1.0
    supported_collectors = ()
    default_collector = None
    #: Heap bytes reserved for the VM's own data (boot image, compiled
    #: code, VM structures) and unavailable to the application.
    vm_reserved_bytes = 6 * MB
    #: Instruction cost of VM bootstrap.
    boot_instructions = 350_000_000

    def __init__(self, platform, collector=None, heap_mb=64, seed=42,
                 n_slices=160, dvfs_freq_scale=None,
                 initial_temperature_c=None, obs=None):
        collector = collector or self.default_collector
        if collector not in self.supported_collectors:
            raise UnknownCollectorError(
                f"{self.name} supports {self.supported_collectors}, "
                f"got {collector!r}"
            )
        heap_bytes = int(heap_mb * MB) - self.vm_reserved_bytes
        if heap_bytes < 2 * MB:
            raise ConfigurationError(
                f"heap of {heap_mb} MB leaves no room after the VM's "
                f"{self.vm_reserved_bytes // MB} MB reservation"
            )
        self.platform = platform
        self.collector_name = collector
        self.heap_mb = int(heap_mb)
        self.heap_bytes = heap_bytes
        self.seed = seed
        self.n_slices = n_slices
        #: Optional fixed DVFS operating point (paper Section VII lists
        #: DVFS as future work; the platform supports it natively).
        self.dvfs_freq_scale = dvfs_freq_scale
        #: Optional warm-start die temperature (long-running servers
        #: operate at steady temperature, not at ambient).
        self.initial_temperature_c = initial_temperature_c
        #: Observability bundle (null by default; see :mod:`repro.obs`).
        #: Strictly write-only — spans and metrics never feed back into
        #: the simulation, so a traced run is byte-identical to an
        #: untraced one.
        self.obs = obs if obs is not None else NULL_OBS

    # -- public API ----------------------------------------------------

    def run(self, benchmark, input_scale=1.0, warm=True, repetitions=1,
            idle_between_s=0.5):
        """Execute *benchmark* to completion; return a :class:`RunResult`.

        ``input_scale`` shrinks the input (e.g. 0.1 for SpecJVM98 -s10);
        ``warm`` models the paper's warm-up run (OS file caches hot);
        ``repetitions`` re-runs the workload back-to-back with idle gaps
        (used by the Figure 1 thermal experiment).
        """
        rng = np.random.default_rng(self.seed)
        self.platform.reset()
        if self.dvfs_freq_scale is not None:
            self.platform.cpu.set_dvfs(self.dvfs_freq_scale)
        if self.initial_temperature_c is not None:
            self.platform.thermal.reset(self.initial_temperature_c)
        if isinstance(benchmark, WorkloadRun):
            # Pre-built workload (e.g. an allocation-trace replay).
            workload = benchmark
            spec = workload.spec
        else:
            spec = (
                get_benchmark(benchmark) if isinstance(benchmark, str)
                else benchmark
            )
            workload = WorkloadRun(spec, rng, input_scale=input_scale,
                                   n_slices=self.n_slices)
        collector = self._make_collector(rng)
        sched = self._make_scheduler()
        roots = RootSet()
        refs = ReferenceFactory(rng)
        classloader = ClassLoader(
            self.platform.name,
            lazy_system_classes=self.lazy_system_classes,
            loader_factor=self.loader_factor,
        )
        gc_cost = GCCostModel(
            self.platform.name,
            burst=GCBurstProfile(
                fraction=spec.gc_burst.fraction,
                cpi_scale=spec.gc_burst.cpi_scale,
                mix=spec.gc_burst.mix,
            ),
        )
        state = _RunState(
            spec=workload.spec,
            workload=workload,
            collector=collector,
            sched=sched,
            roots=roots,
            refs=refs,
            classloader=classloader,
            gc_cost=gc_cost,
            warm=warm,
            app_profile=profile_for(
                self.platform.name, "app", **workload.spec.app_overrides
            ),
        )
        tracer = self.obs.tracer
        log = self.obs.log
        log.info("vm.run.start", vm=self.name,
                 benchmark=workload.spec.name,
                 collector=self.collector_name, heap_mb=self.heap_mb,
                 seed=self.seed)
        self._setup_compilers(state)
        boot_from = sched.sim_now_s
        self._boot(state)
        if tracer.enabled:
            tracer.add_sim_span("boot", "vm", boot_from,
                                sched.sim_now_s, vm=self.name)
        for rep in range(repetitions):
            if rep > 0 and idle_between_s > 0:
                sched.idle(idle_between_s)
            rep_from = sched.sim_now_s
            for sl in workload.slices:
                self._run_slice(state, sl)
            if tracer.enabled and repetitions > 1:
                tracer.add_sim_span(f"repetition {rep}", "vm",
                                    rep_from, sched.sim_now_s)
        log.info("vm.run.finish", vm=self.name,
                 benchmark=workload.spec.name,
                 sim_duration_s=round(sched.sim_now_s, 6),
                 collections=collector.stats.collections,
                 port_writes=sched.port_writes)
        return RunResult(
            benchmark=workload.spec.name,
            vm_name=self.name,
            platform_name=self.platform.name,
            collector_name=self.collector_name,
            heap_mb=self.heap_mb,
            seed=self.seed,
            timeline=sched.finish(),
            gc_stats=collector.stats,
            collector=collector,
            classloader=classloader,
            workload=workload,
            port_writes=sched.port_writes,
            perturbation_cycles=(
                self.platform.port.total_perturbation_cycles()
            ),
            repetitions=repetitions,
            opt_compiles=getattr(state.opt, "methods_compiled", 0)
            if state.opt else 0,
            base_compiles=getattr(state.base, "methods_compiled", 0)
            if state.base else 0,
            jit_compiles=getattr(state.jit, "methods_compiled", 0)
            if state.jit else 0,
        )

    # -- hooks implemented by subclasses ----------------------------

    def _make_collector(self, rng):
        """Build the run's collector.  Overridable for ablation
        studies (e.g. custom nursery sizes)."""
        return make_collector(self.collector_name, self.heap_bytes, rng)

    def _make_scheduler(self):
        """Build the run's instrumented scheduler.  Overridable for
        extensions that interpose on execution (e.g. DVFS governors)."""
        return InstrumentedScheduler(self.platform, style=self.style,
                                     obs=self.obs)

    def _setup_compilers(self, state):
        raise NotImplementedError

    def _boot(self, state):
        raise NotImplementedError

    def _compile_on_first_call(self, state, method):
        raise NotImplementedError

    def _post_slice(self, state, sl):
        """Subclass hook after each slice (Jikes runs the AOS here)."""

    # -- slice execution -------------------------------------------------

    def _run_slice(self, state, sl):
        for cls in sl.class_loads:
            act = state.classloader.load(cls, warm=state.warm)
            if act is not None:
                state.sched.execute(act)
        for method in sl.method_calls:
            if not method.compiled:
                self._compile_on_first_call(state, method)
        state.roots.expire(state.now)
        self._run_app_phase(state, sl)
        self._post_slice(state, sl)

    def _run_app_phase(self, state, sl):
        sizes, deaths = state.workload.draw_cohort_batch(
            state.now, sl.alloc_bytes
        )
        total_alloc = sum(sizes)
        emitted_frac = 0.0
        allocated = 0
        mutations_left = sl.mutations
        stride = max(1, len(sizes) // (sl.mutations + 1)) if sizes else 1
        ring = state.mutation_ring

        for i, (size, death) in enumerate(zip(sizes, deaths)):
            death = max(death, state.now + 1.0)
            try:
                obj = state.collector.allocate(size, state.now, death)
            except SpaceExhausted:
                frac = allocated / total_alloc if total_alloc else 1.0
                self._emit_app(
                    state, sl, sl.bytecodes * (frac - emitted_frac)
                )
                emitted_frac = frac
                obj = self._collect_and_retry(state, size, death)
            state.roots.add(obj)
            state.refs.wire(obj)
            state.now += size
            allocated += size
            ring.append(obj)
            if len(ring) > MUTATION_RING:
                ring.pop(0)
            if mutations_left > 0 and i % stride == stride - 1:
                target = state.workload.mutation_target(ring)
                if target is not None:
                    state.collector.record_mutation(target)
                    mutations_left -= 1
        self._emit_app(state, sl, sl.bytecodes * (1.0 - emitted_frac))

    def _collect_and_retry(self, state, size, death):
        state.roots.expire(state.now)
        try:
            reports = state.collector.collect(state.roots, state.now)
        except SpaceExhausted:
            self.obs.log.warning(
                "gc.out_of_memory", heap_bytes=self.heap_bytes,
                live_bytes=state.roots.live_bytes(), request=size,
            )
            raise OutOfMemoryError(
                size, self.heap_bytes, state.roots.live_bytes()
            ) from None
        pause_from = state.sched.sim_now_s
        for report in reports:
            for act in state.gc_cost.activities(report):
                state.sched.execute(act)
        self._observe_gc(state, reports, pause_from)
        try:
            return state.collector.allocate(size, state.now, death)
        except SpaceExhausted:
            raise OutOfMemoryError(
                size, self.heap_bytes, state.roots.live_bytes()
            ) from None

    def _observe_gc(self, state, reports, pause_from):
        """Record one GC cycle (span + pause histogram + log)."""
        obs = self.obs
        if not (obs.tracer.enabled or obs.metrics.enabled
                or obs.log.enabled) or not reports:
            return
        pause_s = state.sched.sim_now_s - pause_from
        kind = reports[-1].kind
        freed = sum(r.freed_bytes for r in reports)
        if obs.tracer.enabled:
            obs.tracer.add_sim_span(
                "gc-cycle", "gc", pause_from, pause_from + pause_s,
                kind=kind, collections=len(reports), freed_bytes=freed,
            )
        metrics = obs.metrics
        metrics.counter("gc.cycles").inc()
        metrics.histogram("gc.pause_s").observe(pause_s)
        obs.log.debug("gc.cycle", kind=kind, pause_s=round(pause_s, 6),
                      freed_bytes=freed)

    def _emit_app(self, state, sl, bytecodes):
        if bytecodes <= 0:
            return
        profile = state.app_profile
        collector = state.collector
        ipb = state.workload.method_table.effective_instr_per_bytecode()
        instr = int(bytecodes * ipb * (1.0 + collector.barrier_overhead))
        if instr <= 0:
            return
        locality = min(
            max(profile.locality + collector.mutator_locality_delta, 0.0),
            1.0,
        )
        act = Activity(
            component=Component.APP,
            instructions=instr,
            behavior=MemoryBehavior(
                footprint_bytes=int(
                    state.spec.live_bytes * APP_FOOTPRINT_FACTOR
                ),
                hot_bytes=profile.hot_bytes,
                locality=locality,
                spatial_factor=profile.spatial,
            ),
            refs_per_instr=profile.refs_per_instr,
            l1_miss_rate=profile.l1_miss_rate,
            mix_factor=profile.mix * sl.mix_jitter,
            cpi_scale=profile.cpi_scale * sl.cpi_jitter,
            tag=f"app:slice{sl.index}",
        )
        # The scheduler's running cursor is one add per segment; the
        # timeline's exactly rounded duration_s is O(n) per read and
        # made this accounting quadratic over a run.
        before = state.sched.sim_now_s
        state.sched.execute(act)
        state.app_seconds += state.sched.sim_now_s - before


@dataclass
class _RunState:
    """Mutable per-run state threaded through the slice loop."""

    spec: object
    workload: object
    collector: object
    sched: object
    roots: object
    refs: object
    classloader: object
    gc_cost: object
    warm: bool
    app_profile: object
    now: float = 0.0
    app_seconds: float = 0.0
    aos_mark_s: float = 0.0
    base: Optional[object] = None
    opt: Optional[object] = None
    jit: Optional[object] = None
    aos: Optional[object] = None
    mutation_ring: list = field(default_factory=list)


class JikesRVM(BaseVM):
    """The high-performance adaptive VM (Jikes RVM 2.4.1 model)."""

    name = "jikes"
    style = "jikes"
    lazy_system_classes = False
    loader_factor = 1.0
    supported_collectors = JIKES_COLLECTORS
    default_collector = "GenCopy"
    vm_reserved_bytes = 6 * MB
    boot_instructions = 350_000_000

    def _setup_compilers(self, state):
        state.base = BaselineCompiler(self.platform.name)
        state.opt = OptimizingCompiler(self.platform.name)
        state.aos = AdaptiveOptimizationSystem(
            state.workload.method_table,
            rng=state.workload.rng,
            app_instr_per_second=self.platform.clock_hz * 0.7,
        )

    def _boot(self, state):
        # System classes ship in the boot image: no dynamic loads.
        state.classloader.preload_system(state.workload.classes)
        profile = profile_for(self.platform.name, "boot")
        state.sched.execute(
            Activity(
                component=Component.APP,
                instructions=self.boot_instructions,
                behavior=MemoryBehavior(
                    footprint_bytes=8 * MB,
                    hot_bytes=profile.hot_bytes,
                    locality=profile.locality,
                    spatial_factor=profile.spatial,
                ),
                refs_per_instr=profile.refs_per_instr,
                l1_miss_rate=profile.l1_miss_rate,
                mix_factor=profile.mix,
                cpi_scale=profile.cpi_scale,
                tag="boot",
            )
        )

    def _compile_on_first_call(self, state, method):
        state.sched.execute(state.base.compile(method))

    #: Controller-thread work per processed sample (bookkeeping) and
    #: per epoch (organizer wakeup).  Sized so the controller stays
    #: under 1 % of execution, matching the paper's side measurement
    #: ("its execution time accounted for less than 1 % of the total
    #: benchmark execution time", Section VI).
    CONTROLLER_INSTR_PER_SAMPLE = 900
    CONTROLLER_FIXED_INSTR = 40_000

    def _post_slice(self, state, sl):
        """The adaptive optimization system's epoch: sample, decide,
        drain the compile queue on the optimizing-compiler thread, and
        account the controller thread's own work."""
        elapsed = state.app_seconds - state.aos_mark_s
        state.aos_mark_s = state.app_seconds
        n_samples = state.aos.take_samples(elapsed)
        state.aos.consider_recompilation()
        tracer = self.obs.tracer
        job = state.aos.next_job()
        while job is not None:
            if job.level.quality > job.method.quality:
                compile_from = state.sched.sim_now_s
                state.sched.execute(
                    state.opt.compile(job.method, job.level)
                )
                if tracer.enabled:
                    tracer.add_sim_span(
                        "opt-compile", "compiler", compile_from,
                        state.sched.sim_now_s,
                        method=job.method.name, level=job.level.name,
                    )
                self.obs.metrics.counter("compiler.opt_compiles").inc()
            job = state.aos.next_job()
        self._run_controller_thread(state, n_samples)

    def _run_controller_thread(self, state, n_samples):
        """The AOS controller thread: wakes each epoch, processes the
        sample buffer, and runs the cost/benefit organizer."""
        profile = profile_for(self.platform.name, "boot")
        instr = (
            self.CONTROLLER_FIXED_INSTR
            + n_samples * self.CONTROLLER_INSTR_PER_SAMPLE
        )
        state.sched.execute(
            Activity(
                component=Component.SCHEDULER,
                instructions=instr,
                behavior=MemoryBehavior(
                    footprint_bytes=512 * 1024,
                    hot_bytes=profile.hot_bytes,
                    locality=profile.locality,
                    spatial_factor=profile.spatial,
                ),
                refs_per_instr=profile.refs_per_instr,
                l1_miss_rate=profile.l1_miss_rate,
                mix_factor=profile.mix,
                cpi_scale=profile.cpi_scale,
                tag="aos-controller",
            )
        )


class KaffeVM(BaseVM):
    """The portable embedded-friendly VM (Kaffe 1.1.4 model).

    "Kaffe can be configured as an interpreter machine, or with
    Just-In-Time (JIT) compiler support.  ...  For this work we use the
    JIT version of Kaffe" (Section IV-A).  Both configurations are
    available here via ``mode``: ``"jit"`` (the paper's setting) or
    ``"interp"`` (pure bytecode interpretation — no JIT component, far
    lower code quality; the configuration Farkas et al., the paper's
    reference [20], compared against JIT mode on a pocket computer).
    """

    name = "kaffe"
    style = "kaffe"
    lazy_system_classes = True
    loader_factor = KAFFE_LOADER_FACTOR
    supported_collectors = ("KaffeGC",)
    default_collector = "KaffeGC"
    vm_reserved_bytes = 2 * MB
    boot_instructions = 60_000_000

    def __init__(self, platform, mode="jit", **kwargs):
        if mode not in ("jit", "interp"):
            raise ConfigurationError(
                f"Kaffe mode must be 'jit' or 'interp', got {mode!r}"
            )
        super().__init__(platform, **kwargs)
        self.mode = mode

    def _setup_compilers(self, state):
        if self.mode == "jit":
            state.jit = KaffeJIT(self.platform.name)

    def _boot(self, state):
        profile = profile_for(self.platform.name, "boot")
        state.sched.execute(
            Activity(
                component=Component.APP,
                instructions=self.boot_instructions,
                behavior=MemoryBehavior(
                    footprint_bytes=2 * MB,
                    hot_bytes=profile.hot_bytes,
                    locality=profile.locality,
                    spatial_factor=profile.spatial,
                ),
                refs_per_instr=profile.refs_per_instr,
                l1_miss_rate=profile.l1_miss_rate,
                mix_factor=profile.mix,
                cpi_scale=profile.cpi_scale,
                tag="boot",
            )
        )

    def _compile_on_first_call(self, state, method):
        if self.mode == "jit":
            compile_from = state.sched.sim_now_s
            state.sched.execute(state.jit.compile(method))
            if self.obs.tracer.enabled:
                self.obs.tracer.add_sim_span(
                    "jit-compile", "compiler", compile_from,
                    state.sched.sim_now_s, method=method.name,
                )
            self.obs.metrics.counter("compiler.jit_compiles").inc()
        else:
            # The interpreter executes bytecodes directly: no compile
            # activity, but dreadful code quality from then on.
            from repro.jvm.compiler.method import QUALITY_INTERPRETER

            method.quality = QUALITY_INTERPRETER
            method.tier = "interp"


register_vm(
    "jikes",
    JikesRVM,
    description="IBM Jikes RVM 2.4.1 (adaptive optimization, 4 GCs)",
    style="jikes",
    collectors=JIKES_COLLECTORS,
    default_collector=JikesRVM.default_collector,
    platforms=("p6", "pxa255"),
)
register_vm(
    "kaffe",
    KaffeVM,
    description="Kaffe 1.1.4 (JIT, incremental mark-sweep GC)",
    style="kaffe",
    collectors=KaffeVM.supported_collectors,
    default_collector=KaffeVM.default_collector,
    platforms=("p6", "pxa255"),
)


def make_vm(vm_name, platform, collector=None, heap_mb=64, seed=42,
            n_slices=160, dvfs_freq_scale=None, obs=None):
    """Instantiate a VM by registered name (e.g. ``"jikes"``).

    ``collector=None`` picks the registry's default for that VM (which
    matches the VM class default for the built-in VMs but lets
    registered extension VMs declare their own).
    """
    entry = VM_REGISTRY.get(vm_name)
    if collector is None:
        collector = entry.metadata.get("default_collector")
    return entry.obj(
        platform, collector=collector, heap_mb=heap_mb, seed=seed,
        n_slices=n_slices, dvfs_freq_scale=dvfs_freq_scale, obs=obs,
    )
