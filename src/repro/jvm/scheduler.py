"""Component-ID instrumentation and execution scheduling.

This is the software half of the paper's Section IV-C: the VM must make
the identity of the running component visible at the I/O port so the DAQ
can attribute power samples.  The two VMs are instrumented differently:

* **Kaffe** brackets each component with *entry and exit* port writes —
  nested calls (e.g. the class loader invoked from the JIT) restore the
  caller's ID on exit, so a component stack is maintained;
* **Jikes RVM** runs services such as the optimizing compiler on separate
  threads, so the identification call lives in the *thread scheduler*: one
  port write per context switch, no nesting.

Every port write costs real cycles (about a microsecond per parallel-port
OUT on the P6 platform); the scheduler charges that cost to the entered
component as an explicit "perturbation" segment, making the methodology's
own overhead a measurable quantity.

The scheduler is also where execution meets the thermal model: each
emitted segment advances die temperature, and the CPU's throttle latch is
refreshed so that a thermal emergency (Figure 1) halves the duty cycle of
everything that follows.
"""

import numpy as np

from repro.errors import ConfigurationError
from repro.hardware.activity import SegmentBatch
from repro.jvm.components import Component
from repro.obs import NULL_OBS
from repro.obs.tracer import SimSpanOpen
from repro.timeline import ExecutionTimeline, Segment

#: Instructions attributed to one port write (the OUT plus marshalling).
PORT_WRITE_INSTR = 30

#: Relative power during a legacy-I/O write (bus wait, core mostly idle).
PORT_WRITE_POWER_FACTOR = 1.15


class InstrumentedScheduler:
    """Runs activities on a platform, emitting an instrumented timeline."""

    #: Default chunking bound: long activities are split so that thermal
    #: coupling and measurement see at most ~50 ms of uniform behavior.
    DEFAULT_CHUNK_S = 0.05

    #: Engine used when ``engine`` is not given and no subclass hooks the
    #: per-segment append path.  The batched engine costs all chunks of
    #: an activity in one vectorized call and commits them to the
    #: timeline as column slices; it is bit-identical to the legacy
    #: per-segment engine (the golden-equivalence suite enforces this).
    DEFAULT_ENGINE = "batched"

    def __init__(self, platform, style="jikes", max_chunk_s=None,
                 obs=None, engine=None):
        if style not in ("jikes", "kaffe"):
            raise ConfigurationError(
                "instrumentation style must be 'jikes' or 'kaffe', "
                f"got {style!r}"
            )
        if engine is None:
            # Subclasses that intercept the per-segment append hook
            # (e.g. DVFS governors observing every segment) silently get
            # the legacy engine; the batched path bypasses ``_append``.
            overrides_append = (
                type(self)._append is not InstrumentedScheduler._append
            )
            engine = "legacy" if overrides_append else self.DEFAULT_ENGINE
        if engine not in ("legacy", "batched"):
            raise ConfigurationError(
                f"engine must be 'legacy' or 'batched', got {engine!r}"
            )
        self.engine = engine
        self.platform = platform
        self.style = style
        self.exec_model = platform.execution_model
        self.timeline = ExecutionTimeline(platform.clock_hz)
        self._cycle = 0
        self._stack = [int(Component.APP)]
        self._latched = None
        self.max_chunk_cycles = int(
            (max_chunk_s or self.DEFAULT_CHUNK_S) * platform.clock_hz
        )
        self.port_writes = 0
        # -- observability (write-only; never feeds back into the sim) --
        self.obs = obs if obs is not None else NULL_OBS
        self._tracer = self.obs.tracer
        #: Cheap running wall-time sum (one add per segment).  Tracing
        #: and the VM's span hooks read simulated "now" from here instead
        #: of ``timeline.duration_s``, whose exactly rounded fsum is
        #: O(n) per call; the simulation itself never reads this value.
        self._sim_now_s = 0.0
        self._open_component = None   # SimSpanOpen for the current run
        self._throttle_from = None    # sim time the throttle latched
        self.throttle_episodes = 0

    @property
    def now_cycle(self):
        return self._cycle

    @property
    def now_s(self):
        """Wall time elapsed so far."""
        return self.timeline.duration_s

    @property
    def sim_now_s(self):
        """Cheap running simulated-time cursor (for tracing hooks)."""
        return self._sim_now_s

    @property
    def current_component(self):
        return self._stack[-1]

    # -- component identification ------------------------------------

    def _write_port(self, component, force=False):
        """Latch *component* on the port and charge the write cost.

        ``force`` bypasses the redundant-write elision.  Kaffe's exit
        stubs execute the OUT unconditionally — they cannot know the
        restored caller ID already sits on the port — so eliding those
        writes undercounted the exit-path perturbation whenever a nested
        call re-entered the component already latched (e.g. the class
        loader loading a superclass from inside itself).
        """
        if not force and self._latched == component:
            return
        port = self.platform.port
        port.write(self._cycle, component)
        self._latched = component
        self.port_writes += 1
        cost = port.write_cost_cycles
        if cost > 0:
            duration_s = cost / self.platform.cpu.effective_clock_hz
            seg = Segment(
                start_cycle=self._cycle,
                end_cycle=self._cycle + cost,
                component=component,
                instructions=PORT_WRITE_INSTR,
                cpu_power_w=(
                    self.platform.power_model.idle_power_w()
                    * PORT_WRITE_POWER_FACTOR
                ),
                mem_power_w=self.platform.memory.power_w(0, duration_s),
                wall_s=duration_s,
                tag="port-write",
            )
            self._append(seg)

    def enter(self, component):
        """Kaffe-style component entry: push and latch."""
        component = int(component)
        self._stack.append(component)
        self._write_port(component)

    def exit(self):
        """Kaffe-style component exit: pop and restore the caller's ID."""
        if len(self._stack) <= 1:
            raise ConfigurationError("component stack underflow")
        self._stack.pop()
        # Kaffe rewrites the port on exit even if an outer frame has the
        # same ID; Jikes-style scheduling has no exits.
        self._write_port(self._stack[-1], force=self.style == "kaffe")

    # -- execution ------------------------------------------------------

    def execute(self, activity):
        """Run *activity*: latch its component, account its chunks."""
        component = int(activity.component)
        if self.style == "kaffe" and component != self.current_component:
            self.enter(activity.component)
            self._emit_chunks(activity)
            self.exit()
        else:
            self._write_port(component)
            self._emit_chunks(activity)

    def _chunk_split(self, activity):
        """Split an activity's instructions into chunk counts.

        Returns ``(counts, cost)`` where *cost* is the whole-activity
        cost tuple — reusable verbatim for single-chunk activities, which
        would otherwise pay the cost computation twice.
        """
        total = activity.instructions
        # Estimate cycles to pick a chunk count, then split instructions.
        cost = self.exec_model.cost(activity)
        n_chunks = max(1, -(-cost[0] // self.max_chunk_cycles))
        if n_chunks == 1:
            return [total], cost
        base, remainder = divmod(total, n_chunks)
        counts = [base + 1] * remainder + [base] * (n_chunks - remainder)
        if base == 0:
            counts = counts[:remainder]
        return counts, cost

    def _emit_chunks(self, activity):
        if activity.instructions <= 0:
            return
        counts, cost = self._chunk_split(activity)
        if len(counts) == 1:
            # Single-chunk activities (the common case at default chunk
            # size) gain nothing from vectorization; reuse the cost the
            # split already computed.
            seg = self.exec_model.run(activity, self._cycle, cost=cost)
            seg.wall_s = seg.cycles / self.platform.cpu.effective_clock_hz
            self._append(seg)
            return
        if self.engine == "batched":
            self._emit_chunks_batched(activity, counts)
            return
        for instr in counts:
            chunk = _with_instructions(activity, instr)
            seg = self.exec_model.run(chunk, self._cycle)
            seg.wall_s = seg.cycles / self.platform.cpu.effective_clock_hz
            self._append(seg)

    def _emit_chunks_batched(self, activity, counts):
        """Vectorized chunk emission: cost every chunk of the activity in
        one call, flush early whenever the throttle latch flips.

        All chunks of a batch are costed under the CPU state in force
        when the batch starts.  The thermal integration
        (:meth:`~repro.hardware.thermal.ThermalModel.step_batch`) stops
        after the first latch flip, the consumed prefix is committed,
        and the remaining chunks are re-costed under the new duty cycle —
        so duty-cycle feedback stays cycle-exact with the legacy engine.
        """
        counts = np.asarray(counts, dtype=np.int64)
        pos = 0
        while pos < len(counts):
            batch = self.exec_model.run_batch(
                activity, counts[pos:], self._cycle
            )
            pos += self._commit_batch(
                batch, int(activity.component), activity.tag
            )

    def idle(self, seconds, component=Component.IDLE):
        """Account an idle interval (e.g. between repetitive runs)."""
        if seconds <= 0:
            return
        self._write_port(int(component))
        remaining = self.platform.cpu.seconds_to_cycles(seconds)
        if self.engine == "batched" and remaining > self.max_chunk_cycles:
            self._idle_batched(int(component), remaining)
            return
        while remaining > 0:
            cycles = min(remaining, self.max_chunk_cycles)
            seg = self.exec_model.idle(int(component), self._cycle, cycles)
            seg.wall_s = cycles / self.platform.cpu.effective_clock_hz
            self._append(seg)
            remaining -= cycles

    def _idle_batched(self, component, remaining):
        chunk = self.max_chunk_cycles
        idle_power = self.platform.power_model.idle_power_w()
        while remaining > 0:
            n_full, tail = divmod(remaining, chunk)
            k = int(n_full) + (1 if tail else 0)
            cycles = np.full(k, chunk, dtype=np.int64)
            if tail:
                cycles[-1] = tail
            end_cycles = self._cycle + np.cumsum(cycles)
            durations = cycles / self.platform.cpu.effective_clock_hz
            zeros = np.zeros(k, dtype=np.int64)
            batch = SegmentBatch(
                start_cycles=end_cycles - cycles,
                end_cycles=end_cycles,
                instructions=zeros,
                l2_accesses=zeros,
                l2_misses=zeros,
                mem_accesses=zeros,
                cpu_power_w=np.full(k, idle_power, dtype=np.float64),
                mem_power_w=self.platform.memory.power_w_batch(
                    zeros, durations
                ),
                durations_s=durations,
            )
            consumed = self._commit_batch(batch, component, "idle")
            remaining -= int(cycles[:consumed].sum())

    def _append(self, seg):
        self.timeline.append(seg)
        if seg.cycles > 0:
            self._cycle = seg.end_cycle
            self.platform.counters.record_segment(seg)
            duration_s = seg.duration_s(self.timeline.clock_hz)
            # Thermal coupling: temperature integrates the power the
            # segment actually drew; the throttle latch feeds back into
            # the CPU's duty cycle for subsequent segments.
            thermal = self.platform.thermal
            thermal.step(seg.cpu_power_w, duration_s, record=False)
            was_throttled = self.platform.cpu.throttled
            self.platform.cpu.throttled = thermal.throttled
            start_s = self._sim_now_s
            self._sim_now_s = start_s + duration_s
            self._observe_segment(seg, start_s, was_throttled)

    def _commit_batch(self, batch, component, tag):
        """Integrate, commit, and observe a batch prefix; return the
        number of segments consumed (``>= 1``).

        The thermal model consumes segments until the throttle latch
        flips (or the batch ends); only that prefix — costed under the
        correct duty cycle — reaches the timeline and the counters.
        """
        thermal = self.platform.thermal
        consumed = thermal.step_batch(
            batch.cpu_power_w, batch.durations_s, record=False
        )
        sl = slice(0, consumed)
        cycles = batch.end_cycles[sl] - batch.start_cycles[sl]
        self.timeline.append_batch(
            batch.start_cycles[sl], batch.end_cycles[sl], component,
            batch.instructions[sl], batch.l2_accesses[sl],
            batch.l2_misses[sl], batch.mem_accesses[sl],
            batch.cpu_power_w[sl], batch.mem_power_w[sl],
            batch.durations_s[sl], tag=tag,
        )
        self._cycle = int(batch.end_cycles[consumed - 1])
        self.platform.counters.record_batch(
            cycles, batch.instructions[sl], batch.l2_accesses[sl],
            batch.l2_misses[sl], batch.mem_accesses[sl],
        )
        was_throttled = self.platform.cpu.throttled
        self.platform.cpu.throttled = thermal.throttled
        durations = batch.durations_s[sl].tolist()
        if self._tracer.enabled:
            # The latch can only flip on the *last* consumed segment
            # (step_batch stops there), so every earlier segment ran
            # under the previous throttle state.
            for i, dt in enumerate(durations):
                start_s = self._sim_now_s
                end_s = start_s + dt
                self._sim_now_s = end_s
                throttled = (
                    thermal.throttled if i == consumed - 1
                    else was_throttled
                )
                self._observe(
                    component, tag, start_s, end_s, throttled,
                    was_throttled,
                )
        else:
            # Fast path: sequential adds keep the simulated-time cursor
            # bit-identical to the per-segment engine.
            now = self._sim_now_s
            for dt in durations:
                now = now + dt
            self._sim_now_s = now
            throttled = thermal.throttled
            if throttled and not was_throttled:
                self._throttle_from = now
                self.throttle_episodes += 1
            elif was_throttled and not throttled:
                self._throttle_from = None
        return consumed

    def _observe_segment(self, seg, start_s, was_throttled):
        """Tracing hooks for one retired segment (write-only)."""
        self._observe(
            seg.component, seg.tag, start_s, self._sim_now_s,
            self.platform.cpu.throttled, was_throttled,
        )

    def _observe(self, component, tag, start_s, end_s, throttled,
                 was_throttled):
        """Throttle-episode bookkeeping and tracing for one segment."""
        if throttled and not was_throttled:
            self._throttle_from = end_s
            self.throttle_episodes += 1
        elif was_throttled and not throttled:
            if self._tracer.enabled and self._throttle_from is not None:
                self._tracer.add_sim_span(
                    "thermal-throttle", "thermal",
                    self._throttle_from, end_s,
                )
            self._throttle_from = None
        if not self._tracer.enabled:
            return
        if tag == "port-write":
            self._tracer.add_sim_span(
                "port-write", "perturbation", start_s, end_s,
                component=Component.from_port_value(
                    component).short_name,
            )
        # Coalesce contiguous same-component segments (port-write
        # perturbation is charged to the entered component, so it never
        # breaks a run) into one span on the "components" track.
        name = Component.from_port_value(component).short_name
        open_ = self._open_component
        if open_ is None:
            self._open_component = SimSpanOpen(
                name=name, track="components", start_s=start_s,
            )
        elif open_.name != name:
            open_.close(self._tracer, start_s)
            self._open_component = SimSpanOpen(
                name=name, track="components", start_s=start_s,
            )

    def finish(self):
        """Final bookkeeping; returns the completed timeline."""
        if self._tracer.enabled:
            if self._open_component is not None:
                self._open_component.close(self._tracer, self._sim_now_s)
                self._open_component = None
            if self._throttle_from is not None:
                self._tracer.add_sim_span(
                    "thermal-throttle", "thermal",
                    self._throttle_from, self._sim_now_s,
                )
                self._throttle_from = None
        metrics = self.obs.metrics
        if metrics.enabled:
            metrics.counter("scheduler.segments_emitted").inc(
                len(self.timeline)
            )
            metrics.counter("scheduler.port_writes").inc(
                self.port_writes
            )
            metrics.counter(
                "scheduler.perturbation_instructions"
            ).inc(self.port_writes * PORT_WRITE_INSTR)
            metrics.counter(
                "scheduler.perturbation_cycles"
            ).inc(self.port_writes * self.platform.port.write_cost_cycles)
            metrics.counter("scheduler.throttle_episodes").inc(
                self.throttle_episodes
            )
        return self.timeline


def _with_instructions(activity, instructions):
    """Copy *activity* with a different instruction count."""
    from dataclasses import replace

    if instructions == activity.instructions:
        return activity
    return replace(activity, instructions=instructions)
