"""Component-ID instrumentation and execution scheduling.

This is the software half of the paper's Section IV-C: the VM must make
the identity of the running component visible at the I/O port so the DAQ
can attribute power samples.  The two VMs are instrumented differently:

* **Kaffe** brackets each component with *entry and exit* port writes —
  nested calls (e.g. the class loader invoked from the JIT) restore the
  caller's ID on exit, so a component stack is maintained;
* **Jikes RVM** runs services such as the optimizing compiler on separate
  threads, so the identification call lives in the *thread scheduler*: one
  port write per context switch, no nesting.

Every port write costs real cycles (about a microsecond per parallel-port
OUT on the P6 platform); the scheduler charges that cost to the entered
component as an explicit "perturbation" segment, making the methodology's
own overhead a measurable quantity.

The scheduler is also where execution meets the thermal model: each
emitted segment advances die temperature, and the CPU's throttle latch is
refreshed so that a thermal emergency (Figure 1) halves the duty cycle of
everything that follows.
"""

from repro.errors import ConfigurationError
from repro.jvm.components import Component
from repro.obs import NULL_OBS
from repro.obs.tracer import SimSpanOpen
from repro.timeline import ExecutionTimeline, Segment

#: Instructions attributed to one port write (the OUT plus marshalling).
PORT_WRITE_INSTR = 30

#: Relative power during a legacy-I/O write (bus wait, core mostly idle).
PORT_WRITE_POWER_FACTOR = 1.15


class InstrumentedScheduler:
    """Runs activities on a platform, emitting an instrumented timeline."""

    #: Default chunking bound: long activities are split so that thermal
    #: coupling and measurement see at most ~50 ms of uniform behavior.
    DEFAULT_CHUNK_S = 0.05

    def __init__(self, platform, style="jikes", max_chunk_s=None,
                 obs=None):
        if style not in ("jikes", "kaffe"):
            raise ConfigurationError(
                "instrumentation style must be 'jikes' or 'kaffe', "
                f"got {style!r}"
            )
        self.platform = platform
        self.style = style
        self.exec_model = platform.execution_model
        self.timeline = ExecutionTimeline(platform.clock_hz)
        self._cycle = 0
        self._stack = [int(Component.APP)]
        self._latched = None
        self.max_chunk_cycles = int(
            (max_chunk_s or self.DEFAULT_CHUNK_S) * platform.clock_hz
        )
        self.port_writes = 0
        # -- observability (write-only; never feeds back into the sim) --
        self.obs = obs if obs is not None else NULL_OBS
        self._tracer = self.obs.tracer
        #: Cheap running wall-time sum (one add per segment).  Tracing
        #: and the VM's span hooks read simulated "now" from here instead
        #: of ``timeline.duration_s``, whose exactly rounded fsum is
        #: O(n) per call; the simulation itself never reads this value.
        self._sim_now_s = 0.0
        self._open_component = None   # SimSpanOpen for the current run
        self._throttle_from = None    # sim time the throttle latched
        self.throttle_episodes = 0

    @property
    def now_cycle(self):
        return self._cycle

    @property
    def now_s(self):
        """Wall time elapsed so far."""
        return self.timeline.duration_s

    @property
    def sim_now_s(self):
        """Cheap running simulated-time cursor (for tracing hooks)."""
        return self._sim_now_s

    @property
    def current_component(self):
        return self._stack[-1]

    # -- component identification ------------------------------------

    def _write_port(self, component):
        """Latch *component* on the port and charge the write cost."""
        if self._latched == component:
            return
        port = self.platform.port
        port.write(self._cycle, component)
        self._latched = component
        self.port_writes += 1
        cost = port.write_cost_cycles
        if cost > 0:
            duration_s = cost / self.platform.cpu.effective_clock_hz
            seg = Segment(
                start_cycle=self._cycle,
                end_cycle=self._cycle + cost,
                component=component,
                instructions=PORT_WRITE_INSTR,
                cpu_power_w=(
                    self.platform.power_model.idle_power_w()
                    * PORT_WRITE_POWER_FACTOR
                ),
                mem_power_w=self.platform.memory.power_w(0, duration_s),
                wall_s=duration_s,
                tag="port-write",
            )
            self._append(seg)

    def enter(self, component):
        """Kaffe-style component entry: push and latch."""
        component = int(component)
        self._stack.append(component)
        self._write_port(component)

    def exit(self):
        """Kaffe-style component exit: pop and restore the caller's ID."""
        if len(self._stack) <= 1:
            raise ConfigurationError("component stack underflow")
        self._stack.pop()
        # Kaffe rewrites the port on exit even if an outer frame has the
        # same ID; Jikes-style scheduling has no exits.
        self._write_port(self._stack[-1])

    # -- execution ------------------------------------------------------

    def execute(self, activity):
        """Run *activity*: latch its component, account its chunks."""
        component = int(activity.component)
        if self.style == "kaffe" and component != self.current_component:
            self.enter(activity.component)
            self._emit_chunks(activity)
            self.exit()
        else:
            self._write_port(component)
            self._emit_chunks(activity)

    def _emit_chunks(self, activity):
        total = activity.instructions
        if total <= 0:
            return
        # Estimate cycles to pick a chunk count, then split instructions.
        est_cycles, *_ = self.exec_model.cost(activity)
        n_chunks = max(1, -(-est_cycles // self.max_chunk_cycles))
        base = total // n_chunks
        remainder = total - base * n_chunks
        for i in range(int(n_chunks)):
            instr = base + (1 if i < remainder else 0)
            if instr <= 0:
                continue
            chunk = _with_instructions(activity, instr)
            seg = self.exec_model.run(chunk, self._cycle)
            seg.wall_s = seg.cycles / self.platform.cpu.effective_clock_hz
            self._append(seg)

    def idle(self, seconds, component=Component.IDLE):
        """Account an idle interval (e.g. between repetitive runs)."""
        if seconds <= 0:
            return
        self._write_port(int(component))
        remaining = self.platform.cpu.seconds_to_cycles(seconds)
        while remaining > 0:
            cycles = min(remaining, self.max_chunk_cycles)
            seg = self.exec_model.idle(int(component), self._cycle, cycles)
            seg.wall_s = cycles / self.platform.cpu.effective_clock_hz
            self._append(seg)
            remaining -= cycles

    def _append(self, seg):
        self.timeline.append(seg)
        if seg.cycles > 0:
            self._cycle = seg.end_cycle
            self.platform.counters.record_segment(seg)
            duration_s = seg.duration_s(self.timeline.clock_hz)
            # Thermal coupling: temperature integrates the power the
            # segment actually drew; the throttle latch feeds back into
            # the CPU's duty cycle for subsequent segments.
            thermal = self.platform.thermal
            thermal.step(seg.cpu_power_w, duration_s, record=False)
            was_throttled = self.platform.cpu.throttled
            self.platform.cpu.throttled = thermal.throttled
            start_s = self._sim_now_s
            self._sim_now_s = start_s + duration_s
            self._observe_segment(seg, start_s, was_throttled)

    def _observe_segment(self, seg, start_s, was_throttled):
        """Tracing hooks for one retired segment (write-only)."""
        end_s = self._sim_now_s
        throttled = self.platform.cpu.throttled
        if throttled and not was_throttled:
            self._throttle_from = end_s
            self.throttle_episodes += 1
        elif was_throttled and not throttled:
            if self._tracer.enabled and self._throttle_from is not None:
                self._tracer.add_sim_span(
                    "thermal-throttle", "thermal",
                    self._throttle_from, end_s,
                )
            self._throttle_from = None
        if not self._tracer.enabled:
            return
        if seg.tag == "port-write":
            self._tracer.add_sim_span(
                "port-write", "perturbation", start_s, end_s,
                component=Component.from_port_value(
                    seg.component).short_name,
            )
        # Coalesce contiguous same-component segments (port-write
        # perturbation is charged to the entered component, so it never
        # breaks a run) into one span on the "components" track.
        name = Component.from_port_value(seg.component).short_name
        open_ = self._open_component
        if open_ is None:
            self._open_component = SimSpanOpen(
                name=name, track="components", start_s=start_s,
            )
        elif open_.name != name:
            open_.close(self._tracer, start_s)
            self._open_component = SimSpanOpen(
                name=name, track="components", start_s=start_s,
            )

    def finish(self):
        """Final bookkeeping; returns the completed timeline."""
        if self._tracer.enabled:
            if self._open_component is not None:
                self._open_component.close(self._tracer, self._sim_now_s)
                self._open_component = None
            if self._throttle_from is not None:
                self._tracer.add_sim_span(
                    "thermal-throttle", "thermal",
                    self._throttle_from, self._sim_now_s,
                )
                self._throttle_from = None
        metrics = self.obs.metrics
        if metrics.enabled:
            metrics.counter("scheduler.segments_emitted").inc(
                len(self.timeline)
            )
            metrics.counter("scheduler.port_writes").inc(
                self.port_writes
            )
            metrics.counter(
                "scheduler.perturbation_instructions"
            ).inc(self.port_writes * PORT_WRITE_INSTR)
            metrics.counter(
                "scheduler.perturbation_cycles"
            ).inc(self.port_writes * self.platform.port.write_cost_cycles)
            metrics.counter("scheduler.throttle_episodes").inc(
                self.throttle_episodes
            )
        return self.timeline


def _with_instructions(activity, instructions):
    """Copy *activity* with a different instruction count."""
    from dataclasses import replace

    return replace(activity, instructions=instructions)
