"""Dynamic class loading.

The two VMs differ in a way the paper shows matters enormously on the
embedded platform (Section VI-E):

* the **Jikes RVM** merges the system classes into its boot image, so only
  *application* classes pass through the dynamic loader at run time;
* **Kaffe** keeps its binary small and lazily class-loads *both* user and
  system classes, producing a long initialization period dominated by
  loader calls — which makes the class loader the single largest JVM
  energy consumer on the PXA255 (about 18 % on average).

Loading a class costs parsing + verification + installation work
proportional to the class-file size; a cold (first-ever) load additionally
pays a storage-read stall, which the paper's warm-up run removes — the
:class:`~repro.core.experiment.Experiment` runner performs the same
warm-up before measuring.
"""

from dataclasses import dataclass

from repro.hardware.activity import Activity
from repro.hardware.cache import MemoryBehavior
from repro.jvm.components import Component
from repro.jvm.profiles import profile_for

#: Instructions per class-file byte (parse + verify + link + initialize).
LOAD_INSTR_PER_BYTE = 60

#: Fixed per-class overhead (symbol interning, registry insertion).
LOAD_FIXED_INSTR = 30_000

#: Extra instructions-equivalent stall for a cold (uncached) file read.
COLD_READ_INSTR_PER_BYTE = 25

#: Kaffe's loader path is slower (portable C, extra indirection).
KAFFE_LOADER_FACTOR = 1.5

#: Class-file reads on the DBPXA255 come from slow FLASH/MMC storage and a
#: small page cache; the extra per-byte stall makes class loading the
#: dominant JVM energy consumer there (Section VI-E).
PXA255_STORAGE_FACTOR = 1.5


@dataclass(frozen=True)
class ClassSpec:
    """A loadable class: name, class-file size, and origin."""

    name: str
    file_bytes: int
    is_system: bool = False


class ClassLoader:
    """Tracks loaded classes and prices each load as an activity."""

    def __init__(self, platform_name, lazy_system_classes,
                 loader_factor=1.0):
        self.platform_name = platform_name
        #: Kaffe loads system classes dynamically; Jikes boot-images them.
        self.lazy_system_classes = lazy_system_classes
        self.loader_factor = loader_factor
        self._loaded = set()
        self.loads = 0
        self.loaded_bytes = 0

    def is_loaded(self, name):
        return name in self._loaded

    @property
    def loaded_count(self):
        return len(self._loaded)

    def needs_load(self, spec):
        """Whether touching this class triggers the dynamic loader."""
        if spec.name in self._loaded:
            return False
        if spec.is_system and not self.lazy_system_classes:
            return False  # merged into the boot image
        return True

    def preload_system(self, specs):
        """Mark system classes as present without loader work (used by the
        Jikes boot sequence for its merged boot image)."""
        for spec in specs:
            if spec.is_system:
                self._loaded.add(spec.name)

    def load(self, spec, warm=True):
        """Load *spec*; return the :class:`Activity` performing the work.

        Returns ``None`` when no dynamic load is needed (already loaded,
        or system class satisfied by the boot image).
        """
        if not self.needs_load(spec):
            return None
        self._loaded.add(spec.name)
        self.loads += 1
        self.loaded_bytes += spec.file_bytes

        instr = (
            spec.file_bytes * LOAD_INSTR_PER_BYTE + LOAD_FIXED_INSTR
        )
        if not warm:
            instr += spec.file_bytes * COLD_READ_INSTR_PER_BYTE
        instr = int(instr * self.loader_factor)
        if self.platform_name == "pxa255":
            instr = int(instr * PXA255_STORAGE_FACTOR)

        profile = profile_for(self.platform_name, "classloader")
        # The loader's working set grows with the metadata already
        # installed: repeated loads touch an ever-larger class registry.
        footprint = max(self.loaded_bytes * 2, 512 * 1024)
        return Activity(
            component=Component.CL,
            instructions=instr,
            behavior=MemoryBehavior(
                footprint_bytes=footprint,
                hot_bytes=profile.hot_bytes,
                locality=profile.locality,
                spatial_factor=profile.spatial,
            ),
            refs_per_instr=profile.refs_per_instr,
            l1_miss_rate=profile.l1_miss_rate,
            mix_factor=profile.mix,
            cpi_scale=profile.cpi_scale,
            tag=f"classload:{spec.name}",
        )
