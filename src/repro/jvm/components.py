"""JVM component identifiers.

The paper instruments each virtual machine so that the identity of the
currently executing JVM service is visible to the measurement hardware: the
VM writes a small integer to a memory-mapped I/O register (the parallel port
on the Pentium M platform, GPIO pins on the DBPXA255 board).  The DAQ samples
this register together with the power channels and attributes each power
sample to the component whose ID is latched at the sample instant.

This module defines those IDs.  The numeric values are what travels over the
simulated port, so they are part of the measurement wire format.
"""

import enum


class Component(enum.IntEnum):
    """Identifier of a JVM software component (or the application).

    The paper studies four Jikes RVM components — garbage collection (GC),
    class loading (CL), baseline compilation (Base) and optimizing
    compilation (Opt) — and three Kaffe components (GC, CL, JIT).  Everything
    else is attributed to the application (``APP``).  ``IDLE`` marks the
    processor idle loop and exists so idle-power experiments can use the same
    attribution machinery.
    """

    APP = 0
    GC = 1
    CL = 2
    BASE = 3
    OPT = 4
    JIT = 5
    SCHEDULER = 6
    IDLE = 7

    @property
    def short_name(self):
        """Abbreviation used in the paper's figures."""
        return _SHORT_NAMES[self]

    @classmethod
    def from_port_value(cls, value):
        """Decode a raw port value into a :class:`Component`.

        Unknown values (possible on a real port due to electrical glitches)
        are attributed to ``APP``, matching the paper's convention that
        anything not positively identified as a JVM service belongs to the
        application.
        """
        try:
            return cls(int(value))
        except ValueError:
            return cls.APP


_SHORT_NAMES = {
    Component.APP: "App",
    Component.GC: "GC",
    Component.CL: "CL",
    Component.BASE: "base_comp",
    Component.OPT: "opt_comp",
    Component.JIT: "JIT",
    Component.SCHEDULER: "sched",
    Component.IDLE: "idle",
}

#: Components reported for the Jikes RVM (Section VI, first paragraph).
JIKES_COMPONENTS = (
    Component.GC,
    Component.CL,
    Component.BASE,
    Component.OPT,
)

#: Components reported for Kaffe (Section VI, first paragraph).
KAFFE_COMPONENTS = (
    Component.GC,
    Component.CL,
    Component.JIT,
)
