"""The Jikes RVM optimizing compiler.

The optimizing compiler recompiles methods the adaptive system labels
"hot", at one of three optimization levels with increasing cost and
increasing code quality (Section IV-A, reference [25]).  Its energy share
averages about 3 % with a 7 % maximum on `_222_mpegaudio` (Section VI-A).
"""

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hardware.activity import Activity
from repro.hardware.cache import MemoryBehavior
from repro.jvm.components import Component
from repro.jvm.profiles import profile_for


@dataclass(frozen=True)
class OptLevel:
    """One optimization level: compile cost vs delivered code quality."""

    name: str
    instr_per_byte: int
    quality: float


#: Jikes' O0/O1/O2, calibrated to the published cost/quality ratios:
#: each level costs several times more than the last and the returns
#: diminish.
OPT_LEVELS = (
    OptLevel(name="opt0", instr_per_byte=1050, quality=1.7),
    OptLevel(name="opt1", instr_per_byte=2900, quality=2.3),
    OptLevel(name="opt2", instr_per_byte=6600, quality=2.7),
)

OPT_FIXED_INSTR = 120_000


class OptimizingCompiler:
    """IR-based recompilation at a selectable optimization level."""

    def __init__(self, platform_name):
        self.platform_name = platform_name
        self.methods_compiled = 0
        self.bytes_compiled = 0
        self.instructions_spent = 0

    @staticmethod
    def level(index):
        try:
            return OPT_LEVELS[index]
        except IndexError:
            raise ConfigurationError(
                f"no optimization level {index}; have 0.."
                f"{len(OPT_LEVELS) - 1}"
            ) from None

    def compile(self, method, level):
        """Recompile *method* at *level*; return the activity."""
        if level.quality <= method.quality:
            raise ConfigurationError(
                f"recompiling {method.name} at {level.name} would not "
                f"improve quality ({level.quality} <= {method.quality})"
            )
        method.quality = level.quality
        method.tier = level.name
        method.compile_count += 1
        self.methods_compiled += 1
        self.bytes_compiled += method.bytecode_bytes

        instr = (
            method.bytecode_bytes * level.instr_per_byte + OPT_FIXED_INSTR
        )
        self.instructions_spent += instr
        profile = profile_for(self.platform_name, "optimizing")
        return Activity(
            component=Component.OPT,
            instructions=instr,
            behavior=MemoryBehavior(
                footprint_bytes=max(method.bytecode_bytes * 40, 256 * 1024),
                hot_bytes=profile.hot_bytes,
                locality=profile.locality,
                spatial_factor=profile.spatial,
            ),
            refs_per_instr=profile.refs_per_instr,
            l1_miss_rate=profile.l1_miss_rate,
            mix_factor=profile.mix,
            cpi_scale=profile.cpi_scale,
            tag=f"opt-compile:{method.name}:{level.name}",
        )
