"""The Jikes RVM baseline compiler.

"When a method is loaded for the first time, a fast but simple baseline
compiler is used to translate the Java bytecodes" (Section IV-A).  The
baseline compiler is a single pass over the bytecode with small, hot
translation tables — which is why the paper finds its energy share below
1 % on every benchmark (Section VI-A) and its power *higher* than the
GC's (good locality, high IPC).
"""

from repro.hardware.activity import Activity
from repro.hardware.cache import MemoryBehavior
from repro.jvm.components import Component
from repro.jvm.compiler.method import QUALITY_BASELINE
from repro.jvm.profiles import profile_for

#: Instructions per bytecode byte translated (single pass, no IR).
BASELINE_INSTR_PER_BYTE = 35

#: Fixed per-method overhead (prologue/epilogue emission, tables).
BASELINE_FIXED_INSTR = 5_000


class BaselineCompiler:
    """Fast single-pass bytecode -> native translation."""

    tier = "baseline"

    def __init__(self, platform_name):
        self.platform_name = platform_name
        self.methods_compiled = 0
        self.bytes_compiled = 0

    def compile(self, method):
        """Baseline-compile *method*; return the compilation activity."""
        method.quality = QUALITY_BASELINE
        method.tier = self.tier
        method.compile_count += 1
        self.methods_compiled += 1
        self.bytes_compiled += method.bytecode_bytes

        instr = (
            method.bytecode_bytes * BASELINE_INSTR_PER_BYTE
            + BASELINE_FIXED_INSTR
        )
        profile = profile_for(self.platform_name, "baseline")
        return Activity(
            component=Component.BASE,
            instructions=instr,
            behavior=MemoryBehavior(
                footprint_bytes=max(method.bytecode_bytes * 6, 64 * 1024),
                hot_bytes=profile.hot_bytes,
                locality=profile.locality,
                spatial_factor=profile.spatial,
            ),
            refs_per_instr=profile.refs_per_instr,
            l1_miss_rate=profile.l1_miss_rate,
            mix_factor=profile.mix,
            cpi_scale=profile.cpi_scale,
            tag=f"base-compile:{method.name}",
        )
