"""Kaffe's just-in-time compiler.

"Kaffe JIT translates opcodes to native instructions without performing
extensive code optimizations.  This creates longer execution times for
benchmarks causing it to consume larger amounts of energy" (Section VI-D).

Every method is JIT-compiled on first invocation — there is no tiering
and no recompilation.  The produced code quality is *below* the Jikes
baseline (0.85), which is the mechanism behind Kaffe's 2-3x longer
benchmark runtimes and correspondingly diluted JVM-component energy
shares in Figure 9.
"""

from repro.hardware.activity import Activity
from repro.hardware.cache import MemoryBehavior
from repro.jvm.components import Component
from repro.jvm.compiler.method import QUALITY_KAFFE_JIT
from repro.jvm.profiles import profile_for

#: Instructions per bytecode byte translated (single pass + peephole).
JIT_INSTR_PER_BYTE = 110

#: Fixed per-method overhead.
JIT_FIXED_INSTR = 18_000


class KaffeJIT:
    """Compile-on-first-use JIT with fixed (modest) code quality."""

    tier = "jit"

    def __init__(self, platform_name):
        self.platform_name = platform_name
        self.methods_compiled = 0
        self.bytes_compiled = 0

    def compile(self, method):
        """JIT-compile *method*; return the compilation activity."""
        method.quality = QUALITY_KAFFE_JIT
        method.tier = self.tier
        method.compile_count += 1
        self.methods_compiled += 1
        self.bytes_compiled += method.bytecode_bytes

        instr = method.bytecode_bytes * JIT_INSTR_PER_BYTE + JIT_FIXED_INSTR
        profile = profile_for(self.platform_name, "jit")
        return Activity(
            component=Component.JIT,
            instructions=instr,
            behavior=MemoryBehavior(
                footprint_bytes=max(method.bytecode_bytes * 8, 64 * 1024),
                hot_bytes=profile.hot_bytes,
                locality=profile.locality,
                spatial_factor=profile.spatial,
            ),
            refs_per_instr=profile.refs_per_instr,
            l1_miss_rate=profile.l1_miss_rate,
            mix_factor=profile.mix,
            cpi_scale=profile.cpi_scale,
            tag=f"jit-compile:{method.name}",
        )
