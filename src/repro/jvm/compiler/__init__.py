"""Runtime compilation subsystems.

* :mod:`repro.jvm.compiler.method` — the unit of compilation,
* :mod:`repro.jvm.compiler.baseline` — Jikes' fast baseline compiler,
* :mod:`repro.jvm.compiler.optimizing` — Jikes' optimizing compiler
  (three optimization levels),
* :mod:`repro.jvm.compiler.adaptive` — the adaptive optimization system
  (sample-driven hotness estimation and cost/benefit recompilation),
* :mod:`repro.jvm.compiler.kaffe_jit` — Kaffe's compile-on-first-use JIT.
"""

from repro.jvm.compiler.adaptive import AdaptiveOptimizationSystem
from repro.jvm.compiler.baseline import BaselineCompiler
from repro.jvm.compiler.kaffe_jit import KaffeJIT
from repro.jvm.compiler.method import JavaMethod, MethodTable
from repro.jvm.compiler.optimizing import OPT_LEVELS, OptimizingCompiler

__all__ = [
    "AdaptiveOptimizationSystem",
    "BaselineCompiler",
    "JavaMethod",
    "KaffeJIT",
    "MethodTable",
    "OPT_LEVELS",
    "OptimizingCompiler",
]
