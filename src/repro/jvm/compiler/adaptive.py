"""The adaptive optimization system (AOS).

"Later, when a method is labeled 'hot' by the adaptive system, the virtual
machine determines if recompiling the method with higher (and costly)
optimization levels improves performance" (Section IV-A; the Arnold et al.
cost/benefit model of reference [25]).

Mechanics modeled:

* a timer-driven **sampler** attributes execution samples to methods in
  proportion to their execution weight;
* each sampling epoch, the **controller** estimates every sampled method's
  future execution time (assumed equal to its observed past time) and
  recompiles when the predicted saving of a higher optimization level
  exceeds that level's compile cost;
* accepted jobs go to a **compile queue** drained by the optimizing
  compiler running on its own thread, which the VM's scheduler interleaves
  with the application in quanta — exactly why the paper instruments Jikes
  in the thread scheduler rather than at component entry/exit
  (Section IV-C).
"""

from dataclasses import dataclass

import numpy as np

from repro.jvm.compiler.optimizing import OPT_FIXED_INSTR, OPT_LEVELS

#: AOS sampling period (Jikes samples on the 10 ms scheduler tick).
SAMPLE_PERIOD_S = 0.01

#: The controller discounts predicted future time to hedge misprediction.
FUTURE_DISCOUNT = 0.9

#: Effective compile throughput (native instructions per second) used by
#: the cost/benefit estimate; only the *ratio* of cost to benefit matters.
ASSUMED_COMPILE_IPS = 1.0e9


@dataclass
class CompileJob:
    """A queued recompilation decision."""

    method: object
    level: object
    predicted_benefit_s: float
    predicted_cost_s: float


class AdaptiveOptimizationSystem:
    """Sample-driven hotness detection + cost/benefit recompilation."""

    def __init__(self, method_table, rng, app_instr_per_second):
        self.method_table = method_table
        self.rng = rng
        #: Rough application speed, used to turn samples into seconds.
        self.app_instr_per_second = app_instr_per_second
        self.queue = []
        self.total_samples = 0
        self.jobs_submitted = 0
        self._queued_ids = set()
        self._residue_s = 0.0
        #: Weights are immutable after table normalization; build the
        #: multinomial parameter vector once instead of per epoch.
        self._weights = [m.weight for m in method_table.methods]
        #: Indices of methods that have received at least one sample —
        #: the only ones the controller's cost/benefit scan can act on.
        self._sampled = set()

    def take_samples(self, elapsed_app_s):
        """Distribute the sampling epoch's ticks over methods by weight.

        Epochs shorter than the sampling period are carried over to the
        next call, so short scheduling quanta still accumulate samples.
        """
        self._residue_s += elapsed_app_s
        n_samples = int(self._residue_s / SAMPLE_PERIOD_S)
        if n_samples <= 0:
            return 0
        self._residue_s -= n_samples * SAMPLE_PERIOD_S
        counts = self.rng.multinomial(n_samples, self._weights)
        methods = self.method_table.methods
        hit = np.flatnonzero(counts).tolist()
        for i in hit:
            methods[i].samples += int(counts[i])
        self._sampled.update(hit)
        self.total_samples += n_samples
        return n_samples

    def consider_recompilation(self):
        """Run the controller's cost/benefit model; enqueue winning jobs.

        Returns the list of newly queued :class:`CompileJob` objects.

        Only sampled methods are scanned (an unsampled method has
        ``past_s == 0`` and can never win), in table order, so the scan
        enqueues exactly the jobs a full sweep would.
        """
        new_jobs = []
        methods = self.method_table.methods
        for i in sorted(self._sampled):
            method = methods[i]
            if not method.compiled or id(method) in self._queued_ids:
                continue
            past_s = method.samples * SAMPLE_PERIOD_S
            if past_s <= 0.0:
                continue
            future_s = past_s * FUTURE_DISCOUNT
            best = None
            for level in OPT_LEVELS:
                if level.quality <= method.quality:
                    continue
                speedup = level.quality / method.quality
                benefit_s = future_s * (1.0 - 1.0 / speedup)
                cost_instr = (
                    method.bytecode_bytes * level.instr_per_byte
                    + OPT_FIXED_INSTR
                )
                cost_s = cost_instr / ASSUMED_COMPILE_IPS
                gain = benefit_s - cost_s
                if gain > 0 and (best is None or gain > best[0]):
                    best = (gain, level, benefit_s, cost_s)
            if best is not None:
                _, level, benefit_s, cost_s = best
                job = CompileJob(
                    method=method,
                    level=level,
                    predicted_benefit_s=benefit_s,
                    predicted_cost_s=cost_s,
                )
                self.queue.append(job)
                self._queued_ids.add(id(method))
                self.jobs_submitted += 1
                new_jobs.append(job)
        return new_jobs

    def next_job(self):
        """Pop the next compile job (highest predicted gain first)."""
        if not self.queue:
            return None
        self.queue.sort(
            key=lambda j: j.predicted_benefit_s - j.predicted_cost_s,
            reverse=True,
        )
        job = self.queue.pop(0)
        self._queued_ids.discard(id(job.method))
        return job

    @property
    def pending_jobs(self):
        return len(self.queue)
