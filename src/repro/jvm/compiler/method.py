"""Methods: the unit of compilation and of execution-time accounting.

A method's ``weight`` is its share of total application bytecode
execution; weights across a benchmark's method table sum to 1.  Execution
speed depends on the *code quality* of the tier that most recently
compiled the method: the application's effective instructions-per-bytecode
is the base cost divided by the method's quality.
"""

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

#: Native instructions needed to execute one bytecode at quality 1.0
#: (Jikes baseline-compiled code).
INSTR_PER_BYTECODE = 6.5

#: Code-quality levels by tier.
QUALITY_BASELINE = 1.0
QUALITY_KAFFE_JIT = 0.85   # Kaffe JIT does no extensive optimization
QUALITY_INTERPRETER = 0.22  # bytecode dispatch costs ~4-5x JIT'd code


@dataclass
class JavaMethod:
    """One compilable method."""

    name: str
    bytecode_bytes: int
    weight: float
    quality: float = 0.0      # 0.0 = not yet compiled (not executable)
    tier: str = "none"        # none | baseline | jit | opt0 | opt1 | opt2
    compile_count: int = 0
    samples: int = 0

    #: Global generation counter bumped on every quality write, letting
    #: :meth:`MethodTable.effective_instr_per_bytecode` cache its O(n)
    #: aggregate between (re)compilations.
    quality_epoch = 0

    def __post_init__(self):
        if self.bytecode_bytes <= 0:
            raise ConfigurationError("method bytecode size must be positive")
        if self.weight < 0:
            raise ConfigurationError("method weight cannot be negative")

    def __setattr__(self, name, value):
        if name == "quality":
            JavaMethod.quality_epoch += 1
            table = getattr(self, "_table_ref", None)
            if table is not None:
                table._quality_arr[self._table_idx] = value
        object.__setattr__(self, name, value)

    @property
    def compiled(self):
        return self.quality > 0.0

    def instructions_per_bytecode(self):
        """Native instructions per bytecode at the current tier."""
        if not self.compiled:
            raise ConfigurationError(
                f"method {self.name} executed before compilation"
            )
        return INSTR_PER_BYTECODE / self.quality


class MethodTable:
    """The benchmark's methods with a normalized weight distribution.

    Provides the aggregate the VM's inner loop needs: the effective
    instructions-per-bytecode across currently compiled tiers, weighted by
    each method's execution share.  As the adaptive system upgrades hot
    methods, this aggregate drops and the application speeds up — the
    mechanism behind Jikes' performance advantage over Kaffe.
    """

    def __init__(self, methods):
        if not methods:
            raise ConfigurationError("a method table cannot be empty")
        total = sum(m.weight for m in methods)
        if total <= 0:
            raise ConfigurationError("method weights must sum to > 0")
        for m in methods:
            m.weight = m.weight / total
        self.methods = list(methods)
        # Weights are immutable after normalization, so that column is
        # captured once; the quality column is kept in sync by
        # :meth:`JavaMethod.__setattr__` so the aggregate recompute
        # never has to walk the method objects.
        self._weights_arr = np.array(
            [m.weight for m in self.methods], dtype=np.float64
        )
        self._quality_arr = np.array(
            [m.quality for m in self.methods], dtype=np.float64
        )
        for i, m in enumerate(self.methods):
            object.__setattr__(m, "_table_idx", i)
            object.__setattr__(m, "_table_ref", self)
        self._effective_cache = (None, None)

    def __len__(self):
        return len(self.methods)

    def __iter__(self):
        return iter(self.methods)

    def effective_instr_per_bytecode(self):
        """Weight-averaged instructions per bytecode over compiled
        methods (uncompiled methods don't execute yet and are skipped).

        The aggregate only moves when some method's code quality moves,
        so it is cached against the global quality generation counter;
        every recompute performs the identical reduction over the same
        columns, keeping repeat runs bit-identical.
        """
        epoch = JavaMethod.quality_epoch
        cached_epoch, cached = self._effective_cache
        if cached_epoch == epoch:
            return cached
        q = self._quality_arr
        compiled = q > 0.0
        den = float(self._weights_arr[compiled].sum())
        if den == 0.0:
            value = INSTR_PER_BYTECODE
        else:
            num = float(
                (self._weights_arr[compiled]
                 * (INSTR_PER_BYTECODE / q[compiled])).sum()
            )
            value = num / den
        self._effective_cache = (epoch, value)
        return value

    def hottest(self, n):
        """The *n* highest-weight methods."""
        return sorted(self.methods, key=lambda m: -m.weight)[:n]

    def total_bytecode_bytes(self):
        return sum(m.bytecode_bytes for m in self.methods)
