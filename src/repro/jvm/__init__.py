"""Simulated Java virtual machines and their service components.

Subpackages:

* :mod:`repro.jvm.gc` — garbage collectors (SemiSpace, MarkSweep, GenCopy,
  GenMS, and Kaffe's incremental tri-color mark-sweep),
* :mod:`repro.jvm.compiler` — baseline/optimizing/JIT compilers and the
  adaptive optimization system,

Modules:

* :mod:`repro.jvm.components` — component IDs written to the I/O port,
* :mod:`repro.jvm.objects` / :mod:`repro.jvm.heap` — the simulated object
  heap that the collectors operate on,
* :mod:`repro.jvm.classloader` — lazy class loading,
* :mod:`repro.jvm.scheduler` — component-ID instrumentation and thread
  interleaving,
* :mod:`repro.jvm.vm` — the integrated :class:`~repro.jvm.vm.JikesRVM` and
  :class:`~repro.jvm.vm.KaffeVM`.
"""

from repro.jvm.components import Component
from repro.jvm.vm import JikesRVM, KaffeVM, RunResult, make_vm

__all__ = ["Component", "JikesRVM", "KaffeVM", "RunResult", "make_vm"]
