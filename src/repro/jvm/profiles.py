"""Microarchitectural profiles of JVM components.

Every component activity needs a fine-grained locality description (memory
references per instruction, L1 miss rate, instruction mix) before the
execution model can account it.  These numbers are component-intrinsic
calibration constants; the *coarse-grained* cache behavior (L2/working-set
misses) is computed mechanistically from the actual data footprints the
simulated JVM produces, so heap size and collector effects emerge rather
than being baked in.

The values are calibrated so the P6 platform reproduces the paper's
Section VI-C measurements (application IPC about 0.8 and L2 miss rate
about 11 %; GC IPC about 0.55 with L2 miss rates above 50 %; class loader
L2 miss 12-21 %), and the PXA255 overrides reproduce the inverted ordering
of Section VI-E (GC is the *most* power-hungry component on the XScale,
the class loader the least, stalled on instruction fetch and data
dependencies).
"""

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class MicroProfile:
    """Fine-grained execution character of one component activity."""

    refs_per_instr: float
    l1_miss_rate: float
    locality: float       # fraction of refs to the hot working set
    hot_bytes: int        # size of that hot set
    spatial: float        # new-line fraction of cold references
    mix: float = 1.0      # instruction-mix power weighting
    cpi_scale: float = 1.0

    def tweaked(self, **overrides):
        """Return a copy with selected fields replaced."""
        return replace(self, **overrides)


#: Baseline (P6) profiles.
_P6 = {
    # Application code: decent locality, moderate memory intensity.
    "app": MicroProfile(
        refs_per_instr=0.35,
        l1_miss_rate=0.050,
        locality=0.80,
        hot_bytes=384 * 1024,
        spatial=0.55,
        mix=1.00,
    ),
    # GC trace/mark: pointer chasing over the live set.
    "gc_trace": MicroProfile(
        refs_per_instr=0.45,
        l1_miss_rate=0.040,
        locality=0.12,
        hot_bytes=256 * 1024,
        spatial=0.78,
        mix=0.98,
    ),
    # GC copy/evacuate: streaming reads + writes.
    "gc_copy": MicroProfile(
        refs_per_instr=0.55,
        l1_miss_rate=0.036,
        locality=0.08,
        hot_bytes=128 * 1024,
        spatial=0.72,
        mix=1.05,
    ),
    # GC sweep: walking side metadata (bitmaps / block headers).
    "gc_sweep": MicroProfile(
        refs_per_instr=0.40,
        l1_miss_rate=0.055,
        locality=0.30,
        hot_bytes=128 * 1024,
        spatial=0.85,
        mix=0.82,
    ),
    # Class loader: parsing + installing metadata; mostly resident.
    "classloader": MicroProfile(
        refs_per_instr=0.38,
        l1_miss_rate=0.035,
        locality=0.58,
        hot_bytes=192 * 1024,
        spatial=0.62,
        mix=0.98,
        cpi_scale=1.38,
    ),
    # Baseline compiler: fast single-pass translation, hot tables.
    "baseline": MicroProfile(
        refs_per_instr=0.32,
        l1_miss_rate=0.025,
        locality=0.85,
        hot_bytes=128 * 1024,
        spatial=0.40,
        mix=1.00,
        cpi_scale=1.30,
    ),
    # Optimizing compiler: IR transformation, high ILP, mostly resident.
    "optimizing": MicroProfile(
        refs_per_instr=0.34,
        l1_miss_rate=0.028,
        locality=0.80,
        hot_bytes=256 * 1024,
        spatial=0.40,
        mix=1.02,
        cpi_scale=1.25,
    ),
    # Kaffe's JIT: simple translation similar to the baseline compiler.
    "jit": MicroProfile(
        refs_per_instr=0.32,
        l1_miss_rate=0.026,
        locality=0.85,
        hot_bytes=128 * 1024,
        spatial=0.40,
        mix=1.00,
        cpi_scale=1.30,
    ),
    # VM boot / miscellaneous runtime.
    "boot": MicroProfile(
        refs_per_instr=0.35,
        l1_miss_rate=0.040,
        locality=0.75,
        hot_bytes=256 * 1024,
        spatial=0.50,
        mix=1.00,
    ),
}

#: PXA255 (XScale) overrides.  The in-order core exposes different
#: bottlenecks: the JIT'd application code is dependency-stall-bound
#: (Kaffe performs no extensive optimization), the class loader is
#: fetch-stall-bound (Section VI-E), and the GC — small heaps, short
#: 32-byte lines, streaming access — sustains the *highest* relative IPC.
_PXA255 = {
    "app": _P6["app"].tweaked(cpi_scale=1.30, l1_miss_rate=0.055,
                              mix=1.04),
    "gc_trace": _P6["gc_trace"].tweaked(cpi_scale=1.00,
                                        l1_miss_rate=0.030, mix=0.98),
    "gc_copy": _P6["gc_copy"].tweaked(cpi_scale=1.00, l1_miss_rate=0.030,
                                      mix=1.00),
    "gc_sweep": _P6["gc_sweep"].tweaked(cpi_scale=1.05,
                                        l1_miss_rate=0.035, mix=1.02),
    "classloader": _P6["classloader"].tweaked(cpi_scale=2.60,
                                              l1_miss_rate=0.050,
                                              mix=0.92),
    "jit": _P6["jit"].tweaked(cpi_scale=1.45),
    "baseline": _P6["baseline"].tweaked(cpi_scale=1.45),
    "optimizing": _P6["optimizing"].tweaked(cpi_scale=1.50),
    "boot": _P6["boot"].tweaked(cpi_scale=1.40),
}

_BY_PLATFORM = {
    "p6": _P6,
    "pxa255": _PXA255,
}


def profile_for(platform_name, key, **overrides):
    """Look up the :class:`MicroProfile` for a component activity.

    ``platform_name`` is the :class:`~repro.hardware.platform.Platform`
    name; unknown platforms fall back to the P6 profile set.  Keyword
    overrides produce a tweaked copy (used by per-benchmark adjustments).
    """
    table = _BY_PLATFORM.get(platform_name, _P6)
    profile = table.get(key)
    if profile is None:
        profile = _P6[key]
    if overrides:
        profile = profile.tweaked(**overrides)
    return profile


def profile_keys():
    """All known profile keys (for validation and tests)."""
    return tuple(_P6.keys())
