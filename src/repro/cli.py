"""Command-line interface.

Provides the workflows a user of the paper's infrastructure would run
day to day::

    repro list                             # benchmarks and platforms
    repro run _213_javac --collector SemiSpace --heap 32
    repro run -b _202_jess --trace out.json --metrics
    repro sweep _213_javac --heaps 32 48 128
    repro campaign --benchmarks _202_jess _209_db \
        --collectors SemiSpace GenCopy --heaps 32 64 --workers 4
    repro campaign --benchmarks _202_jess --trace-dir traces/
    repro thermal --fan-off --repetitions 40
    repro validate --periods 40 200 1000
    repro pauses _213_javac --heap 48
    repro workload _209_db
    repro export _202_jess --output results/jess
    repro trace out.json                   # summarize a recorded trace

The top-level ``--verbose``/``--quiet`` flags configure structured
JSON-lines logging (to stderr) once, for every subcommand::

    repro --verbose run _202_jess

(Equivalently ``python -m repro ...``.)
"""

import argparse
import sys

from repro.core.experiment import run_experiment
from repro.core.report import (
    render_perturbation,
    render_series,
    render_table,
)
from repro.jvm.components import Component
from repro.obs import Observability
from repro.obs import logging as obs_logging
from repro.workloads import all_benchmarks


def _add_experiment_args(parser):
    parser.add_argument("--vm", default="jikes",
                        choices=("jikes", "kaffe"))
    parser.add_argument("--platform", default="p6",
                        choices=("p6", "pxa255"))
    parser.add_argument("--collector", default=None,
                        help="SemiSpace|MarkSweep|GenCopy|GenMS "
                             "(jikes) or KaffeGC (kaffe)")
    parser.add_argument("--heap", type=int, default=64,
                        help="heap size in MB")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--input-scale", type=float, default=1.0,
                        help="input size factor (0.1 approximates "
                             "SpecJVM98 -s10)")
    parser.add_argument("--dvfs", type=float, default=None,
                        help="fixed DVFS frequency scale in (0.1, 1]")


def cmd_list(args):
    rows = [
        [spec.suite, spec.name,
         f"{spec.alloc_bytes / 2**20:.0f}", spec.description]
        for spec in all_benchmarks()
    ]
    print(render_table(
        ["Suite", "Benchmark", "Alloc MB", "Description"], rows,
        title="Available benchmarks (the paper's Figure 5):",
    ))
    print("\nPlatforms: p6 (Pentium M 1.6 GHz development board), "
          "pxa255 (Intel DBPXA255 board)")
    return 0


def cmd_run(args):
    benchmark = args.benchmark or args.bench
    if benchmark is None:
        print("repro run: name a benchmark (positionally or with -b)",
              file=sys.stderr)
        return 2
    obs = Observability.create(
        trace=bool(args.trace),
        metrics=bool(args.trace) or args.metrics,
    )
    result = run_experiment(
        benchmark,
        vm=args.vm,
        platform=args.platform,
        collector=args.collector,
        heap_mb=args.heap,
        seed=args.seed,
        input_scale=args.input_scale,
        dvfs_freq_scale=args.dvfs,
        obs=obs,
    )
    print(result.summary())
    print()
    rows = []
    for comp, profile in sorted(result.profiles().items()):
        rows.append([
            comp.short_name,
            profile.seconds,
            profile.energy_j,
            100.0 * profile.energy_fraction,
            profile.avg_power_w,
            profile.peak_power_w,
            profile.ipc,
            100.0 * profile.l2_miss_rate,
        ])
    print(render_table(
        ["component", "time s", "energy J", "energy %", "avg W",
         "peak W", "IPC", "L2 miss %"],
        rows,
    ))
    print()
    print(render_perturbation(result.perturbation))
    if args.trace:
        from repro.obs.chrome import write_chrome_trace

        path = write_chrome_trace(args.trace, obs.tracer, obs.metrics)
        print(f"wrote {path} ({len(obs.tracer.spans)} spans; open in "
              "Perfetto or chrome://tracing, or run `repro trace`)")
    if args.metrics:
        print()
        print(obs.metrics.render())
    return 0


def cmd_sweep(args):
    obs = Observability.create(trace=False, metrics=False)
    series = {}
    for collector in args.collectors:
        points = []
        for heap in args.heaps:
            result = run_experiment(
                args.benchmark,
                vm=args.vm,
                platform=args.platform,
                collector=collector,
                heap_mb=heap,
                seed=args.seed,
                input_scale=args.input_scale,
                obs=obs,
            )
            points.append((heap, result.edp))
        series[collector] = points
    print(f"EDP (joule-seconds) for {args.benchmark}:")
    print(render_series(series, x_label="heap MB", y_fmt="{:.0f}"))
    return 0


def cmd_thermal(args):
    from repro.analysis.thermal import thermal_experiment

    result, trace = thermal_experiment(
        benchmark=args.benchmark,
        repetitions=args.repetitions,
        fan_enabled=not args.fan_off,
    )
    t99 = trace.time_to(99.0)
    print(
        f"{args.benchmark} x{args.repetitions}, fan "
        f"{'off' if args.fan_off else 'on'}: steady "
        f"{trace.steady_c:.1f} C, peak {trace.peak_c:.1f} C, "
        "99 C reached "
        f"{'never' if t99 is None else f'after {t99:.0f} s'}, "
        f"throttled: {trace.ever_throttled}"
    )
    return 0


def cmd_workload(args):
    from repro.workloads import get_benchmark
    from repro.workloads.characterize import (
        characterize,
        render_profile,
    )

    spec = get_benchmark(args.benchmark)
    profile = characterize(spec, seed=args.seed)
    print(render_profile(profile, spec))
    return 0


def cmd_pauses(args):
    from repro.analysis.pauses import mmu_curve, pause_stats
    from repro.hardware.platform import make_platform
    from repro.jvm.vm import make_vm

    platform = make_platform(args.platform)
    vm = make_vm(args.vm, platform, collector=args.collector,
                 heap_mb=args.heap, seed=args.seed,
                 obs=Observability.create(trace=False, metrics=False))
    run = vm.run(args.benchmark, input_scale=args.input_scale)
    stats = pause_stats(run.timeline)
    print(f"{args.benchmark} ({run.collector_name}, {args.heap} MB): "
          f"{stats.describe()}")
    rows = [
        [f"{1000 * w:.0f}", u]
        for w, u in mmu_curve(run.timeline)
    ]
    print(render_table(
        ["window ms", "MMU"], rows,
        title="minimum mutator utilization:",
    ))
    return 0


def cmd_export(args):
    from repro.export import power_trace_to_csv, result_to_json

    result = run_experiment(
        args.benchmark,
        vm=args.vm,
        platform=args.platform,
        collector=args.collector,
        heap_mb=args.heap,
        seed=args.seed,
        input_scale=args.input_scale,
        obs=Observability.create(trace=False, metrics=False),
    )
    json_path = result_to_json(result, args.output + ".json")
    csv_path = power_trace_to_csv(result.power, args.output + ".csv")
    print(f"wrote {json_path} (summary) and {csv_path} "
          f"({result.power.n_samples} power samples)")
    return 0


def cmd_campaign(args):
    import json

    from repro.campaign import CampaignConfig, CampaignRunner
    from repro.campaign.cache import default_cache_dir

    collectors = tuple(
        None if c in ("default", "none") else c
        for c in args.collectors
    )
    campaign = CampaignConfig(
        benchmarks=tuple(args.benchmarks),
        vms=tuple(args.vms),
        platforms=tuple(args.platforms),
        collectors=collectors,
        heap_mbs=tuple(args.heaps),
        seeds=tuple(args.seeds),
        input_scale=args.input_scale,
        derive_seeds=args.derive_seeds,
    )
    cache_dir = None if args.no_cache else (
        args.cache_dir or default_cache_dir()
    )
    tracing = bool(args.trace_dir)
    obs = Observability.create(trace=tracing, metrics=tracing)

    def progress(index, total, cell):
        cfg = cell.config
        if cell.from_cache:
            status = "cached"
        elif cell.ok:
            status = f"ok in {cell.wall_s:.2f} s"
        else:
            status = f"FAILED [{cell.error_type}] {cell.error}"
        print(f"[{index + 1:>4d}/{total}] {cfg.benchmark} "
              f"{cfg.vm}/{cfg.platform} "
              f"{cfg.collector or 'default'} @ {cfg.heap_mb} MB "
              f"seed {cfg.seed}: {status}")

    runner = CampaignRunner(
        workers=args.workers,
        cache_dir=cache_dir,
        timeout_s=args.timeout,
        retries=args.retries,
        progress=progress,
        obs=obs,
        trace_dir=args.trace_dir,
    )
    result = runner.run(campaign)
    print()
    print(result.summary.describe())
    if cache_dir is not None:
        print(f"cell cache: {cache_dir}")
    if args.trace_dir:
        from repro.obs.chrome import write_chrome_trace

        campaign_trace = write_chrome_trace(
            f"{args.trace_dir}/campaign.json", obs.tracer, obs.metrics
        )
        print(f"wrote {campaign_trace} (campaign wall-clock trace) and "
              f"per-cell traces under {args.trace_dir}/")
    rows = []
    for cell in result.ok_cells():
        if cell.oom:
            continue
        cfg = cell.config
        totals = cell.payload["totals"]
        rows.append([
            cfg.benchmark, cfg.vm, cfg.platform,
            cell.payload["config"]["collector"], cfg.heap_mb,
            totals["duration_s"], totals["cpu_energy_j"],
            totals["mem_energy_j"], totals["edp_js"],
        ])
    if rows:
        print(render_table(
            ["benchmark", "vm", "platform", "collector", "heap MB",
             "time s", "CPU J", "mem J", "EDP Js"],
            rows,
        ))
    if args.output:
        path = args.output
        with open(path, "w") as handle:
            json.dump(result.as_dict(), handle, indent=2,
                      sort_keys=True, default=str)
        print(f"wrote {path} (machine-readable campaign report)")
    return 1 if result.failed_cells() else 0


def cmd_validate(args):

    from repro.analysis.validation import attribution_error
    from repro.hardware.platform import make_platform
    from repro.jvm.vm import make_vm

    platform = make_platform(args.platform)
    vm = make_vm(args.vm, platform, collector=args.collector,
                 heap_mb=args.heap, seed=args.seed,
                 obs=Observability.create(trace=False, metrics=False))
    run = vm.run(args.benchmark, input_scale=args.input_scale)
    rows = []
    for period_us in args.periods:
        report = attribution_error(
            run, platform, sample_period_s=period_us * 1e-6
        )
        rows.append([
            f"{period_us:.0f}",
            100 * report.total_misattribution_fraction(),
            100 * report.relative_error(Component.GC),
        ])
    print(render_table(
        ["period us", "misattributed %", "GC error %"], rows,
        title="Attribution error vs DAQ sampling period:",
    ))
    return 0


def cmd_trace(args):
    from repro.errors import MeasurementError
    from repro.obs.chrome import load_trace
    from repro.obs.summary import render_trace_summary, summarize_trace

    try:
        events = load_trace(args.file)
    except (OSError, MeasurementError) as exc:
        print(f"repro trace: {exc}", file=sys.stderr)
        return 2
    summary = summarize_trace(events, top=args.top)
    print(render_trace_summary(summary))
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="JVM energy/power characterization "
                    "(IISWC 2006 reproduction)",
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true",
        help="structured JSON-lines logging at debug level (stderr)",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="suppress structured logging entirely",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmarks and platforms")

    p_run = sub.add_parser("run", help="run one experiment")
    p_run.add_argument("benchmark", nargs="?", default=None)
    p_run.add_argument("-b", "--bench", default=None,
                       help="benchmark name (alternative to the "
                            "positional argument)")
    p_run.add_argument("--trace", default=None, metavar="PATH",
                       help="write a Chrome trace-event JSON of the "
                            "run (open in Perfetto)")
    p_run.add_argument("--metrics", action="store_true",
                       help="print the pipeline metrics registry")
    _add_experiment_args(p_run)

    p_sweep = sub.add_parser("sweep", help="EDP heap sweep")
    p_sweep.add_argument("benchmark")
    _add_experiment_args(p_sweep)
    p_sweep.add_argument(
        "--heaps", type=int, nargs="+",
        default=[32, 48, 64, 80, 96, 112, 128],
    )
    p_sweep.add_argument(
        "--collectors", nargs="+",
        default=["SemiSpace", "MarkSweep", "GenCopy", "GenMS"],
    )

    p_campaign = sub.add_parser(
        "campaign",
        help="run an experiment matrix in parallel with caching",
    )
    p_campaign.add_argument("--benchmarks", nargs="+", required=True)
    p_campaign.add_argument("--vms", nargs="+", default=["jikes"],
                            choices=("jikes", "kaffe"))
    p_campaign.add_argument("--platforms", nargs="+", default=["p6"],
                            choices=("p6", "pxa255"))
    p_campaign.add_argument(
        "--collectors", nargs="+", default=["default"],
        help="collector names; 'default' uses each VM's default "
             "(unsupported VM/collector pairs are skipped)",
    )
    p_campaign.add_argument("--heaps", type=int, nargs="+",
                            default=[64])
    p_campaign.add_argument("--seeds", type=int, nargs="+",
                            default=[42])
    p_campaign.add_argument("--input-scale", type=float, default=1.0)
    p_campaign.add_argument(
        "--derive-seeds", action="store_true",
        help="derive a unique, stable seed per cell from each base seed",
    )
    p_campaign.add_argument("--workers", type=int, default=1,
                            help="worker processes (1 = in-process)")
    p_campaign.add_argument(
        "--cache-dir", default=None,
        help="on-disk cell cache (default: $REPRO_CACHE_DIR or "
             "~/.cache/repro/campaign)",
    )
    p_campaign.add_argument("--no-cache", action="store_true",
                            help="disable the on-disk cell cache")
    p_campaign.add_argument("--timeout", type=float, default=None,
                            help="per-cell wall-clock budget in seconds")
    p_campaign.add_argument("--retries", type=int, default=1,
                            help="retries per failing cell")
    p_campaign.add_argument("--output", default=None,
                            help="write a JSON campaign report here")
    p_campaign.add_argument(
        "--trace-dir", default=None, metavar="DIR",
        help="write Chrome traces here: campaign.json (wall-clock "
             "cells) plus one sim-clock trace per executed cell",
    )

    p_thermal = sub.add_parser("thermal",
                               help="Figure 1 thermal experiment")
    p_thermal.add_argument("--benchmark", default="_222_mpegaudio")
    p_thermal.add_argument("--repetitions", type=int, default=30)
    p_thermal.add_argument("--fan-off", action="store_true")

    p_val = sub.add_parser(
        "validate", help="attribution error vs sampling period"
    )
    p_val.add_argument("--benchmark", default="_202_jess")
    _add_experiment_args(p_val)
    p_val.add_argument("--periods", type=float, nargs="+",
                       default=[40.0, 200.0, 1000.0, 10000.0])

    p_pauses = sub.add_parser(
        "pauses", help="GC pause statistics and MMU curve"
    )
    p_pauses.add_argument("benchmark")
    _add_experiment_args(p_pauses)

    p_export = sub.add_parser(
        "export", help="run one experiment and export JSON + CSV"
    )
    p_export.add_argument("benchmark")
    _add_experiment_args(p_export)
    p_export.add_argument("--output", default="experiment",
                          help="output path prefix")

    p_workload = sub.add_parser(
        "workload", help="characterize a benchmark's memory behavior"
    )
    p_workload.add_argument("benchmark")
    p_workload.add_argument("--seed", type=int, default=42)

    p_trace = sub.add_parser(
        "trace", help="summarize a recorded Chrome trace"
    )
    p_trace.add_argument("file", help="trace JSON written by "
                                      "`repro run --trace`")
    p_trace.add_argument("--top", type=int, default=10,
                         help="spans to show per clock, by self-time")

    return parser


COMMANDS = {
    "list": cmd_list,
    "run": cmd_run,
    "sweep": cmd_sweep,
    "campaign": cmd_campaign,
    "thermal": cmd_thermal,
    "validate": cmd_validate,
    "pauses": cmd_pauses,
    "export": cmd_export,
    "workload": cmd_workload,
    "trace": cmd_trace,
}


def main(argv=None):
    args = build_parser().parse_args(argv)
    obs_logging.configure(verbose=args.verbose, quiet=args.quiet)
    try:
        return COMMANDS[args.command](args)
    except BrokenPipeError:
        # Downstream pipe (e.g. `| head`) closed early; exit quietly
        # with the shell's 128+SIGPIPE convention.  Redirect stdout to
        # devnull first so the interpreter's final flush cannot raise.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 141


if __name__ == "__main__":
    sys.exit(main())
