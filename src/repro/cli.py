"""Command-line interface.

Provides the workflows a user of the paper's infrastructure would run
day to day::

    repro list                             # registries: benchmarks, VMs...
    repro run _213_javac --collector SemiSpace --heap 32
    repro run -b _202_jess --trace out.json --metrics
    repro run --spec examples/scenarios/quickstart.toml
    repro sweep _213_javac --heaps 32 48 128
    repro campaign --benchmarks _202_jess _209_db \
        --collectors SemiSpace GenCopy --heaps 32 64 --workers 4
    repro campaign --spec examples/scenarios/heap_ladder.toml
    repro spec validate examples/scenarios/*.toml
    repro spec show my_scenario.toml       # canonical form + cells
    repro spec hash my_scenario.toml       # stable SHA-256 identity
    repro thermal --fan-off --repetitions 40
    repro validate --periods 40 200 1000
    repro overhead --periods 40 200 1000    # simulate once, measure N
    repro pauses _213_javac --heap 48
    repro workload _209_db
    repro export _202_jess --output results/jess
    repro trace out.json                   # summarize a recorded trace
    repro serve --port 8642                # HTTP experiment service
    repro submit my_scenario.toml --wait   # run a spec remotely
    repro jobs                             # list the server's jobs
    repro cache stats                      # cell cache + result store
    repro cache prune --max-bytes 500M     # LRU-evict to a budget
    repro cache lineage --stale            # entries by producing code
    repro cache prune --stale              # evict other-code entries
    repro replay <hash|spec.toml>          # re-run + byte-diff a result
    repro replay --all                     # sweep the whole store

Flag-based experiment selection is a thin adapter over the scenario
layer: flags build a single-cell :class:`~repro.spec.ScenarioSpec`, so
``repro run -b X`` and ``repro run --spec equivalent.toml`` execute the
identical cell (see docs/SCENARIOS.md).

The top-level ``--verbose``/``--quiet`` flags configure structured
JSON-lines logging (to stderr) once, for every subcommand::

    repro --verbose run _202_jess

(Equivalently ``python -m repro ...``.)
"""

import argparse
import sys

from repro import registry
from repro.core.experiment import Experiment
from repro.core.report import (
    render_perturbation,
    render_series,
    render_table,
)
from repro.errors import ConfigurationError
from repro.jvm.components import Component
from repro.obs import Observability
from repro.obs import logging as obs_logging
from repro.spec import ScenarioSpec
from repro.workloads import all_benchmarks


def _add_experiment_args(parser, positional_benchmark=True):
    """The one shared experiment-selection group.

    Every experiment-shaped subcommand gets the same flags; ``run``,
    ``sweep``, ``pauses``, and ``export`` also accept the benchmark
    positionally or via ``-b/--bench``.
    """
    group = parser.add_argument_group("experiment selection")
    if positional_benchmark:
        group.add_argument("benchmark", nargs="?", default=None)
        group.add_argument("-b", "--bench", default=None,
                           help="benchmark name (alternative to the "
                                "positional argument)")
    group.add_argument("--vm", default="jikes",
                       choices=tuple(registry.VMS.names()))
    group.add_argument("--platform", default="p6",
                       choices=tuple(registry.PLATFORMS.names()))
    group.add_argument("--collector", default=None,
                       help="one of: "
                            + "|".join(registry.COLLECTORS.names())
                            + " (default: the VM's default)")
    group.add_argument("--heap", type=int, default=64,
                       help="heap size in MB")
    group.add_argument("--seed", type=int, default=42)
    group.add_argument("--input-scale", type=float, default=1.0,
                       help="input size factor (0.1 approximates "
                            "SpecJVM98 -s10)")
    group.add_argument("--dvfs", type=float, default=None,
                       help="fixed DVFS frequency scale in (0.1, 1]")
    return group


def _add_spec_arg(parser):
    parser.add_argument("--spec", default=None, metavar="FILE",
                        help="TOML/JSON scenario spec (overrides the "
                             "experiment-selection flags)")


def _resolve_benchmark(args, command):
    benchmark = args.benchmark or getattr(args, "bench", None)
    if benchmark is None:
        print(f"repro {command}: name a benchmark (positionally or "
              "with -b), or pass --spec", file=sys.stderr)
    return benchmark


def _spec_from_args(args, benchmark):
    """The flag path's adapter: flags -> single-cell ScenarioSpec."""
    return ScenarioSpec.for_experiment(
        benchmark,
        vm=args.vm,
        platform=args.platform,
        collector=args.collector,
        heap_mb=args.heap,
        seed=args.seed,
        input_scale=args.input_scale,
        dvfs_freq_scale=args.dvfs,
    )


def _load_spec(path):
    """Load + validate a spec file; prints the error and returns None
    on failure so commands can exit 2 uniformly."""
    try:
        return ScenarioSpec.from_file(path).validate()
    except ConfigurationError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return None


def _single_cell_config(args, command):
    """Resolve run/pauses/validate-style args into one ExperimentConfig
    (spec file or flags), or None after printing an error."""
    if getattr(args, "spec", None):
        spec = _load_spec(args.spec)
        if spec is None:
            return None
        try:
            return spec.experiment_config()
        except ConfigurationError as exc:
            print(f"repro {command}: {exc}", file=sys.stderr)
            return None
    benchmark = _resolve_benchmark(args, command)
    if benchmark is None:
        return None
    return _spec_from_args(args, benchmark).experiment_config()


def cmd_list(args):
    rows = [
        [spec.suite, spec.name,
         f"{spec.alloc_bytes / 2**20:.0f}", spec.description]
        for spec in all_benchmarks()
    ]
    print(render_table(
        ["Suite", "Benchmark", "Alloc MB", "Description"], rows,
        title="Available benchmarks (the paper's Figure 5):",
    ))
    print()
    print(render_table(
        ["Platform", "Clock", "HPM period", "Port", "Description"],
        [
            [entry.name,
             f"{entry.metadata['clock_hz'] / 1e6:.0f} MHz",
             f"{entry.metadata['hpm_period_s'] * 1e3:.0f} ms",
             entry.metadata["port"],
             entry.describe()]
            for entry in registry.PLATFORMS
        ],
        title="Platforms:",
    ))
    print()
    print(render_table(
        ["VM", "Collectors", "Default", "Description"],
        [
            [entry.name,
             " ".join(entry.metadata.get("collectors", ())),
             entry.metadata.get("default_collector") or "-",
             entry.describe()]
            for entry in registry.VMS
        ],
        title="Virtual machines:",
    ))
    print()
    print(render_table(
        ["Collector", "VMs", "Description"],
        [
            [entry.name,
             " ".join(entry.metadata.get("vms", ())),
             entry.describe()]
            for entry in registry.COLLECTORS
        ],
        title="Garbage collectors:",
    ))
    print()
    print(render_table(
        ["Extension", "Kind", "Description"],
        [
            [entry.name, entry.metadata.get("kind", "-"),
             entry.describe()]
            for entry in registry.EXTENSIONS
        ],
        title="Extensions (paper Section VII):",
    ))
    return 0


def cmd_run(args):
    config = _single_cell_config(args, "run")
    if config is None:
        return 2
    obs = Observability.create(
        trace=bool(args.trace),
        metrics=bool(args.trace) or args.metrics,
    )
    result = Experiment(config, obs=obs).run()
    print(result.summary())
    print()
    rows = []
    for comp, profile in sorted(result.profiles().items()):
        rows.append([
            comp.short_name,
            profile.seconds,
            profile.energy_j,
            100.0 * profile.energy_fraction,
            profile.avg_power_w,
            profile.peak_power_w,
            profile.ipc,
            100.0 * profile.l2_miss_rate,
        ])
    print(render_table(
        ["component", "time s", "energy J", "energy %", "avg W",
         "peak W", "IPC", "L2 miss %"],
        rows,
    ))
    print()
    print(render_perturbation(result.perturbation))
    if args.trace:
        from repro.obs.chrome import write_chrome_trace

        path = write_chrome_trace(args.trace, obs.tracer, obs.metrics)
        print(f"wrote {path} ({len(obs.tracer.spans)} spans; open in "
              "Perfetto or chrome://tracing, or run `repro trace`)")
    if args.metrics:
        print()
        print(obs.metrics.render())
    return 0


def cmd_sweep(args):
    benchmark = _resolve_benchmark(args, "sweep")
    if benchmark is None:
        return 2
    spec = ScenarioSpec(
        benchmarks=(benchmark,),
        vms=(args.vm,),
        platforms=(args.platform,),
        collectors=tuple(args.collectors),
        heap_mbs=tuple(args.heaps),
        seeds=(args.seed,),
        input_scales=(args.input_scale,),
        dvfs_freq_scales=(args.dvfs,),
    )
    obs = Observability.create(trace=False, metrics=False)
    series = {}
    for config in spec.cells():
        result = Experiment(config, obs=obs).run()
        series.setdefault(config.collector, []).append(
            (config.heap_mb, result.edp)
        )
    print(f"EDP (joule-seconds) for {benchmark}:")
    print(render_series(series, x_label="heap MB", y_fmt="{:.0f}"))
    return 0


def cmd_thermal(args):
    from repro.analysis.thermal import thermal_experiment

    result, trace = thermal_experiment(
        benchmark=args.benchmark,
        repetitions=args.repetitions,
        fan_enabled=not args.fan_off,
    )
    t99 = trace.time_to(99.0)
    print(
        f"{args.benchmark} x{args.repetitions}, fan "
        f"{'off' if args.fan_off else 'on'}: steady "
        f"{trace.steady_c:.1f} C, peak {trace.peak_c:.1f} C, "
        "99 C reached "
        f"{'never' if t99 is None else f'after {t99:.0f} s'}, "
        f"throttled: {trace.ever_throttled}"
    )
    return 0


def cmd_workload(args):
    from repro.workloads import get_benchmark
    from repro.workloads.characterize import (
        characterize,
        render_profile,
    )

    spec = get_benchmark(args.benchmark)
    profile = characterize(spec, seed=args.seed)
    print(render_profile(profile, spec))
    return 0


def cmd_pauses(args):
    from repro.analysis.pauses import mmu_curve, pause_stats
    from repro.spec import build_vm

    config = _single_cell_config(args, "pauses")
    if config is None:
        return 2
    vm = build_vm(config,
                  obs=Observability.create(trace=False, metrics=False))
    run = vm.run(config.benchmark, input_scale=config.input_scale)
    stats = pause_stats(run.timeline)
    print(f"{config.benchmark} ({run.collector_name}, "
          f"{config.heap_mb} MB): {stats.describe()}")
    rows = [
        [f"{1000 * w:.0f}", u]
        for w, u in mmu_curve(run.timeline)
    ]
    print(render_table(
        ["window ms", "MMU"], rows,
        title="minimum mutator utilization:",
    ))
    return 0


def cmd_export(args):
    from repro.export import power_trace_to_csv, result_to_json

    config = _single_cell_config(args, "export")
    if config is None:
        return 2
    result = Experiment(
        config, obs=Observability.create(trace=False, metrics=False)
    ).run()
    json_path = result_to_json(result, args.output + ".json")
    csv_path = power_trace_to_csv(result.power, args.output + ".csv")
    print(f"wrote {json_path} (summary) and {csv_path} "
          f"({result.power.n_samples} power samples)")
    return 0


def cmd_campaign(args):
    import json

    from repro.campaign import CampaignRunner
    from repro.campaign.cache import default_cache_dir

    if args.spec:
        if args.benchmarks:
            print("repro campaign: give either --spec or --benchmarks, "
                  "not both", file=sys.stderr)
            return 2
        spec = _load_spec(args.spec)
        if spec is None:
            return 2
    else:
        if not args.benchmarks:
            print("repro campaign: name benchmarks with --benchmarks "
                  "or pass --spec", file=sys.stderr)
            return 2
        collectors = tuple(
            None if c in ("default", "none") else c
            for c in args.collectors
        )
        spec = ScenarioSpec(
            benchmarks=tuple(args.benchmarks),
            vms=tuple(args.vms),
            platforms=tuple(args.platforms),
            collectors=collectors,
            heap_mbs=tuple(args.heaps),
            seeds=tuple(args.seeds),
            input_scales=(args.input_scale,),
            derive_seeds=args.derive_seeds,
            version=1,
        )
    campaign = spec.campaign_config()
    print(f"scenario {spec.name or '(unnamed)'} "
          f"spec-hash {spec.spec_hash()[:16]} "
          f"({len(campaign.cells())} cells)")
    cache_dir = None if args.no_cache else (
        args.cache_dir or default_cache_dir()
    )
    tracing = bool(args.trace_dir)
    obs = Observability.create(trace=tracing, metrics=tracing)

    def progress(index, total, cell):
        cfg = cell.config
        if cell.from_cache:
            status = "cached"
        elif cell.ok:
            status = f"ok in {cell.wall_s:.2f} s"
        else:
            status = f"FAILED [{cell.error_type}] {cell.error}"
        print(f"[{index + 1:>4d}/{total}] {cfg.benchmark} "
              f"{cfg.vm}/{cfg.platform} "
              f"{cfg.collector or 'default'} @ {cfg.heap_mb} MB "
              f"seed {cfg.seed}: {status}")

    runner = CampaignRunner(
        workers=args.workers,
        cache_dir=cache_dir,
        timeout_s=args.timeout,
        retries=args.retries,
        progress=progress,
        obs=obs,
        trace_dir=args.trace_dir,
        artifact_dir=args.artifact_dir,
    )
    result = runner.run(campaign)
    print()
    print(result.summary.describe())
    if cache_dir is not None:
        print(f"cell cache: {cache_dir}")
    if args.artifact_dir:
        print(f"artifact store: {args.artifact_dir}")
    if args.trace_dir:
        from repro.obs.chrome import write_chrome_trace

        campaign_trace = write_chrome_trace(
            f"{args.trace_dir}/campaign.json", obs.tracer, obs.metrics
        )
        print(f"wrote {campaign_trace} (campaign wall-clock trace) and "
              f"per-cell traces under {args.trace_dir}/")
    rows = []
    for cell in result.ok_cells():
        if cell.oom:
            continue
        cfg = cell.config
        totals = cell.payload["totals"]
        rows.append([
            cfg.benchmark, cfg.vm, cfg.platform,
            cell.payload["config"]["collector"], cfg.heap_mb,
            totals["duration_s"], totals["cpu_energy_j"],
            totals["mem_energy_j"], totals["edp_js"],
        ])
    if rows:
        print(render_table(
            ["benchmark", "vm", "platform", "collector", "heap MB",
             "time s", "CPU J", "mem J", "EDP Js"],
            rows,
        ))
    if args.output:
        path = args.output
        report = result.as_dict()
        report["scenario"] = {
            "name": spec.name,
            "spec_hash": spec.spec_hash(),
            "spec": spec.to_dict(),
        }
        with open(path, "w") as handle:
            json.dump(report, handle, indent=2,
                      sort_keys=True, default=str)
        print(f"wrote {path} (machine-readable campaign report)")
    return 1 if result.failed_cells() else 0


def cmd_spec(args):
    import json

    from repro.errors import SpecValidationError

    status = 0
    for path in args.files:
        try:
            spec = ScenarioSpec.from_file(path)
        except SpecValidationError as exc:
            # Collect-and-report: every problem, one line each.
            for problem in exc.problems:
                print(f"{path}: INVALID {problem}", file=sys.stderr)
            status = 1
            continue
        except ConfigurationError as exc:
            print(f"{path}: ERROR {exc}", file=sys.stderr)
            status = 1
            continue
        problems = spec.problems()
        if args.action == "validate":
            if problems:
                for problem in problems:
                    print(f"{path}: INVALID {problem}", file=sys.stderr)
                status = 1
            else:
                print(f"{path}: ok ({len(spec.cells())} cells, "
                      f"hash {spec.spec_hash()[:16]})")
        elif args.action == "hash":
            print(f"{spec.spec_hash()}  {path}")
        elif args.action == "show":
            print(json.dumps(spec.to_dict(), indent=2, sort_keys=True))
            if problems:
                for problem in problems:
                    print(f"{path}: INVALID {problem}", file=sys.stderr)
                status = 1
            else:
                print(f"# {len(spec.cells())} cells, "
                      f"hash {spec.spec_hash()}")
    return status


def cmd_validate(args):
    from repro.analysis.validation import attribution_error
    from repro.spec import build_platform, build_vm

    config = _single_cell_config(args, "validate")
    if config is None:
        return 2
    platform = build_platform(config)
    vm = build_vm(config, platform,
                  obs=Observability.create(trace=False, metrics=False))
    run = vm.run(config.benchmark, input_scale=config.input_scale)
    rows = []
    for period_us in args.periods:
        report = attribution_error(
            run, platform, sample_period_s=period_us * 1e-6
        )
        rows.append([
            f"{period_us:.0f}",
            100 * report.total_misattribution_fraction(),
            100 * report.relative_error(Component.GC),
        ])
    print(render_table(
        ["period us", "misattributed %", "GC error %"], rows,
        title="Attribution error vs DAQ sampling period:",
    ))
    return 0


def cmd_overhead(args):
    import json
    import time as time_mod

    from repro.analysis.validation import attribution_error
    from repro.campaign.artifacts import ArtifactStore
    from repro.core.simulation import MeasurementConfig

    config = _single_cell_config(args, "overhead")
    if config is None:
        return 2

    store = None if args.no_artifacts else ArtifactStore(args.artifact_dir)
    experiment = Experiment(config)
    artifact = store.get(config) if store is not None else None
    if artifact is not None:
        sim_wall_s = 0.0
        source = "store"
    else:
        started = time_mod.perf_counter()
        artifact = experiment.simulate().artifact()
        sim_wall_s = time_mod.perf_counter() - started
        source = "simulated"
        if store is not None:
            store.put(config, artifact)
    run = artifact.run_result()
    target = artifact.measurement_target()
    true_cpu_j = sum(run.timeline.component_cpu_energy_j().values())

    rows = []
    records = []
    measure_wall_total = 0.0
    for period_us in args.periods:
        period_s = period_us * 1e-6
        measurement = MeasurementConfig(daq_period_s=period_s)
        started = time_mod.perf_counter()
        result = experiment.measure(artifact, measurement)
        measure_s = time_mod.perf_counter() - started
        measure_wall_total += measure_s
        report = attribution_error(run, target, sample_period_s=period_s)
        energy_err = (
            abs(result.cpu_energy_j - true_cpu_j) / true_cpu_j
            if true_cpu_j else 0.0
        )
        # The Section IV-C perturbation report — what the port-write
        # instrumentation itself cost this measurement point — folded
        # into the frontier instead of needing a separate `repro run`.
        perturb = result.perturbation
        record = {
            "period_us": period_us,
            "daq_samples": result.power.n_samples,
            "cpu_energy_j": result.cpu_energy_j,
            "energy_error_pct": 100 * energy_err,
            "misattributed_pct":
                100 * report.total_misattribution_fraction(),
            "gc_error_pct": 100 * report.relative_error(Component.GC),
            "perturbation_energy_pct": 100 * perturb.energy_fraction,
            "perturbation_time_pct": 100 * perturb.time_fraction,
            "measure_wall_s": measure_s,
        }
        ci_cell = ""
        if args.replicates:
            from repro.analysis.uncertainty import BootstrapEngine

            engine = BootstrapEngine(
                config, replicates=args.replicates,
                measurement=measurement,
            )
            dist = engine.run(artifact).totals["cpu_energy_j"]
            record["cpu_energy_ci"] = dist.as_dict()
            ci_cell = (f"±{dist.ci_half_width:.3f} "
                       f"[{dist.ci_low:.3f}, {dist.ci_high:.3f}]")
        records.append(record)
        row = [
            f"{period_us:.0f}", record["daq_samples"],
            f"{record['cpu_energy_j']:.3f}",
        ]
        if args.replicates:
            row.append(ci_cell)
        row += [
            record["energy_error_pct"],
            record["misattributed_pct"],
            record["gc_error_pct"],
            record["perturbation_energy_pct"],
            f"{measure_s:.4f}",
        ]
        rows.append(row)

    print(f"{config.benchmark} | {config.vm}/{config.platform}: "
          f"artifact {artifact.sim_key[:12]} ({source}, "
          f"{artifact.n_segments} segments)")
    headers = ["period us", "DAQ samples", "CPU J"]
    if args.replicates:
        headers.append(f"95% CI (n={args.replicates})")
    headers += ["energy err %", "misattributed %", "GC error %",
                "perturb %", "measure s"]
    print(render_table(
        headers,
        rows,
        title="Measurement accuracy vs overhead (one simulation, "
              "many measurements):",
    ))
    n = len(args.periods)
    fused_s = n * (sim_wall_s + measure_wall_total / n) \
        if source == "simulated" else None
    split_s = sim_wall_s + measure_wall_total
    line = (f"simulate {sim_wall_s:.3f} s ({source}) + "
            f"{n} measurements {measure_wall_total:.3f} s "
            f"= {split_s:.3f} s")
    if fused_s and split_s > 0:
        line += (f"; fused would re-simulate every point: "
                 f"~{fused_s:.3f} s ({fused_s / split_s:.1f}x)")
    print(line)
    if store is not None:
        print(f"artifact store: {store.root}")
    if args.output:
        payload = {
            "benchmark": config.benchmark,
            "vm": config.vm,
            "platform": config.platform,
            "sim_key": artifact.sim_key,
            "artifact_source": source,
            "simulate_wall_s": sim_wall_s,
            "points": records,
        }
        with open(args.output, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"wrote {args.output} (accuracy-vs-overhead frontier)")
    return 0


def cmd_uncertainty(args):
    import json
    import time as time_mod

    from repro.analysis.uncertainty import BootstrapEngine, NoiseConfig
    from repro.campaign.artifacts import ArtifactStore
    from repro.errors import ConfigurationError as ConfigError

    config = _single_cell_config(args, "uncertainty")
    if config is None:
        return 2
    try:
        noise = NoiseConfig(
            adc_bits=args.adc_bits if args.adc_bits > 0 else None,
            daq_jitter_frac=args.daq_jitter,
            hpm_jitter_frac=args.hpm_jitter,
        )
        engine = BootstrapEngine(
            config, noise=noise, replicates=args.replicates,
            ci_level=args.ci,
        )
    except ConfigError as exc:
        print(f"repro uncertainty: {exc}", file=sys.stderr)
        return 2

    store = None if args.no_artifacts else ArtifactStore(args.artifact_dir)
    artifact = store.get(config) if store is not None else None
    n_simulations = 0
    if artifact is not None:
        sim_wall_s = 0.0
        source = "store"
    else:
        started = time_mod.perf_counter()
        artifact = Experiment(config).simulate().artifact()
        sim_wall_s = time_mod.perf_counter() - started
        n_simulations = 1
        source = "simulated"
        if store is not None:
            store.put(config, artifact)

    started = time_mod.perf_counter()
    report = engine.run(artifact)
    measure_wall_s = time_mod.perf_counter() - started

    print(f"{config.benchmark} | {config.vm}/{config.platform}: "
          f"artifact {artifact.sim_key[:12]} ({source}, "
          f"{artifact.n_segments} segments)")
    print(report.describe())
    print(f"{args.replicates} measurement replicates over "
          f"{n_simulations} simulation(s): simulate {sim_wall_s:.3f} s "
          f"+ bootstrap {measure_wall_s:.3f} s")
    if store is not None:
        print(f"artifact store: {store.root}")
    if args.output:
        # The report section is a pure function of (config, noise,
        # seed, replicates) — byte-identical across invocations; the
        # counters section records what *this* invocation did (first
        # run simulates, the next hits the store), so tooling diffs
        # the two sections separately.
        payload = {
            "schema": "repro-uncertainty-v1",
            "benchmark": config.benchmark,
            "vm": config.vm,
            "platform": config.platform,
            "sim_key": artifact.sim_key,
            "report": report.as_dict(),
            "counters": {
                "n_simulations": n_simulations,
                "artifact_source": source,
                "simulate_wall_s": sim_wall_s,
                "bootstrap_wall_s": measure_wall_s,
            },
        }
        with open(args.output, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"wrote {args.output} (uncertainty report)")
    return 0


def cmd_trace(args):
    from repro.errors import MeasurementError
    from repro.obs.chrome import load_trace
    from repro.obs.summary import render_trace_summary, summarize_trace

    try:
        events = load_trace(args.file)
    except (OSError, MeasurementError) as exc:
        print(f"repro trace: {exc}", file=sys.stderr)
        return 2
    summary = summarize_trace(events, top=args.top)
    print(render_trace_summary(summary))
    return 0


def _parse_size(text):
    """``500M``/``2G``/``1048576`` -> bytes (K/M/G/T suffixes, opt. B)."""
    units = {"k": 2**10, "m": 2**20, "g": 2**30, "t": 2**40}
    cleaned = text.strip().lower().rstrip("b")
    scale = 1
    if cleaned and cleaned[-1] in units:
        scale = units[cleaned[-1]]
        cleaned = cleaned[:-1]
    try:
        value = float(cleaned)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"not a size: {text!r} (use e.g. 1048576, 500M, 2G)"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError("size cannot be negative")
    return int(value * scale)


def _fmt_bytes(n):
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(n) < 1024 or unit == "TiB":
            return (f"{n:.0f} {unit}" if unit == "B"
                    else f"{n:.1f} {unit}")
        n /= 1024


def cmd_serve(args):
    if args.action == "top":
        from repro.serve.top import run_top

        return run_top(
            server_url=args.server, interval_s=args.interval,
            iterations=1 if args.once else None,
        )

    from repro.serve.server import serve_forever

    def ready(server):
        host, port = server.address
        print(f"repro serve: listening on http://{host}:{port} "
              f"(queue {args.queue_size}, {args.job_workers} "
              f"{args.worker_mode} worker(s) x {args.cell_workers} "
              f"cell worker(s))",
              flush=True)

    return serve_forever(
        host=args.host,
        port=args.port,
        drain_timeout=args.drain_timeout,
        ready=ready,
        queue_size=args.queue_size,
        job_workers=args.job_workers,
        worker_mode=args.worker_mode,
        cell_workers=args.cell_workers,
        cache_dir=args.cache_dir,
        use_cell_cache=not args.no_cache,
        result_dir=args.result_dir,
        timeout_s=args.timeout,
        retries=args.retries,
        store_shards=args.store_shards,
        lease_ttl_s=args.lease_ttl,
        job_trace=args.trace_jobs,
    )


def _describe_job(job):
    line = (f"{job['id']}  {job['state']:<8} "
            f"attempts {job['attempts']}  cells {job['n_cells']}")
    if job.get("name"):
        line += f"  ({job['name']})"
    if job["state"] == "done":
        line += (f"  wall {job['wall_s']:.2f} s  "
                 f"executed {job['n_executed']}  "
                 f"cached {job['n_cached']}")
    elif job["state"] == "failed":
        line += f"  error: {job.get('error')}"
    return line


def cmd_submit(args):
    from repro.serve.client import (
        ServiceBusy,
        ServiceClient,
        ServiceError,
    )

    client = ServiceClient(args.server, timeout_s=30.0)
    try:
        job = client.submit_file(args.spec, retry=args.wait,
                                 max_wait_s=args.timeout)
        print(f"job {job['id']}: {job['outcome']} ({job['state']})")
        if args.wait and job["state"] not in ("done", "failed"):
            job = client.wait(job["id"], timeout_s=args.timeout)
            print(_describe_job(job))
        if job["state"] == "failed":
            return 1
        if args.output and job["state"] == "done":
            data = client.result_bytes(job["id"])
            with open(args.output, "wb") as handle:
                handle.write(data)
            print(f"wrote {args.output} ({_fmt_bytes(len(data))})")
        return 0
    except ServiceBusy as exc:
        print(f"repro submit: {exc} (server suggests retrying in "
              f"{exc.retry_after_s:.0f} s)", file=sys.stderr)
        return 3
    except (ServiceError, ConfigurationError, OSError) as exc:
        print(f"repro submit: {exc}", file=sys.stderr)
        return 2


def cmd_jobs(args):
    from repro.serve.client import ServiceClient, ServiceError

    client = ServiceClient(args.server, timeout_s=30.0)
    try:
        if args.trace is not None:
            if not args.id:
                print("repro jobs: --trace needs a job id",
                      file=sys.stderr)
                return 2
            return _fetch_job_trace(client, args.id, args.trace)
        if args.id:
            job = (client.wait(args.id, timeout_s=args.timeout)
                   if args.wait else client.job(args.id))
            print(_describe_job(job))
            return 1 if job["state"] == "failed" else 0
        jobs = client.jobs()
        if not jobs:
            print("(no jobs)")
            return 0
        for job in jobs:
            print(_describe_job(job))
        return 0
    except ServiceError as exc:
        print(f"repro jobs: {exc}", file=sys.stderr)
        return 2


def _fetch_job_trace(client, job_id, out_path):
    """``repro jobs ID --trace``: fetch, save, and summarize the
    merged per-job trace."""
    import json as json_mod

    from repro.obs.summary import render_trace_summary, summarize_trace

    events = client.job_trace(job_id)
    path = out_path or f"{job_id[:12]}.trace.json"
    with open(path, "w") as handle:
        json_mod.dump(events, handle, separators=(",", ":"))
    print(f"wrote {path} ({len(events)} events)")
    print(render_trace_summary(summarize_trace(events)))
    return 0


def cmd_cache(args):
    import time as time_mod

    from repro.campaign.artifacts import ArtifactStore
    from repro.campaign.cache import ResultCache
    from repro.serve.store import ResultStore

    stores = [
        ("cell cache", ResultCache(args.cache_dir)),
        ("result store", ResultStore(args.result_dir)),
        ("artifact store", ArtifactStore(args.artifact_dir)),
    ]
    if args.action == "stats":
        rows = []
        for label, store in stores:
            stats = store.stats()
            rows.append([
                label, stats["root"], stats["entries"],
                _fmt_bytes(stats["total_bytes"]),
            ])
        print(render_table(["store", "root", "entries", "bytes"], rows))
        return 0
    if args.action == "lineage":
        rows = []
        for label, store in stores:
            groups = store.lineage()
            if args.stale:
                groups = [g for g in groups if g["stale"]]
            for group in groups:
                written = group["newest_unix"]
                rows.append([
                    label,
                    (group["code_digest"] or "(none)")[:12],
                    group["repro_version"] or "-",
                    group["cache_version"]
                    if group["cache_version"] is not None else "-",
                    group["entries"],
                    _fmt_bytes(group["total_bytes"]),
                    "stale" if group["stale"] else "current",
                    time_mod.strftime("%Y-%m-%d %H:%M",
                                      time_mod.localtime(written))
                    if written else "-",
                ])
        if not rows:
            print("(no stale entries)" if args.stale
                  else "(no entries)")
            return 0
        print(render_table(
            ["store", "code digest", "version", "cache v", "entries",
             "bytes", "status", "newest"],
            rows,
            title="Entries by producing code"
                  + (" (stale only)" if args.stale else "") + ":",
        ))
        return 0
    # prune: --stale evicts entries written by different code (or with
    # no envelope at all); --max-bytes LRU-evicts to a size budget.
    if args.stale:
        for label, store in stores:
            removed, freed = store.prune_stale()
            print(f"{label}: evicted {removed} stale entries "
                  f"({_fmt_bytes(freed)})")
        return 0
    if args.max_bytes is None:
        print("repro cache prune: pass --max-bytes or --stale",
              file=sys.stderr)
        return 2
    for label, store in stores:
        removed, freed = store.prune(args.max_bytes)
        print(f"{label}: evicted {removed} entries "
              f"({_fmt_bytes(freed)}); now "
              f"{_fmt_bytes(store.total_bytes())} "
              f"<= {_fmt_bytes(args.max_bytes)}")
    return 0


def cmd_replay(args):
    from repro.provenance import (
        DRIFTED,
        IDENTICAL,
        UNREPLAYABLE,
        replay_store_entry,
        store_keys,
    )
    from repro.serve.store import ResultStore

    store = ResultStore(args.result_dir, shards=args.store_shards)
    reports = []

    def run_one(key):
        report = replay_store_entry(store, key, workers=args.workers)
        reports.append(report)
        print(report.describe())
        for line in report.diffs[:args.diff_limit]:
            print(f"    {line}")
        hidden = len(report.diffs) - args.diff_limit
        if hidden > 0:
            print(f"    ... ({hidden} more; raise --diff-limit)")

    if args.all:
        keys = store_keys(store)
        if not keys:
            print(f"repro replay: no stored results under "
                  f"{store.root}", file=sys.stderr)
            return 2
        for key in keys:
            run_one(key)
    elif args.target is None:
        print("repro replay: name a result hash or a spec file, or "
              "pass --all", file=sys.stderr)
        return 2
    else:
        key = _resolve_replay_target(args.target, store)
        if key is None:
            return 2
        run_one(key)

    counts = {IDENTICAL: 0, DRIFTED: 0, UNREPLAYABLE: 0}
    for report in reports:
        counts[report.status] += 1
    print(f"replayed {len(reports)}: {counts[IDENTICAL]} identical, "
          f"{counts[DRIFTED]} drifted, "
          f"{counts[UNREPLAYABLE]} unreplayable")
    if counts[DRIFTED]:
        return 1
    if counts[UNREPLAYABLE]:
        return 2
    return 0


def _resolve_replay_target(target, store):
    """A replay target is a result hash (full or unique prefix) or a
    spec file whose hash names the stored artifact; returns the full
    key, or None after printing an error."""
    from repro.provenance import store_keys

    lowered = target.lower()
    if all(c in "0123456789abcdef" for c in lowered) and len(lowered) >= 8:
        if len(lowered) == 64:
            return lowered
        matches = [k for k in store_keys(store)
                   if k.startswith(lowered)]
        if len(matches) == 1:
            return matches[0]
        what = "ambiguous" if matches else "unknown"
        print(f"repro replay: {what} result hash prefix {target!r}",
              file=sys.stderr)
        return None
    spec = _load_spec(target)
    if spec is None:
        return None
    key = spec.spec_hash()
    print(f"{target}: spec-hash {key[:16]}")
    return key


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="JVM energy/power characterization "
                    "(IISWC 2006 reproduction)",
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true",
        help="structured JSON-lines logging at debug level (stderr)",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="suppress structured logging entirely",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser(
        "list",
        help="list registered benchmarks, platforms, VMs, collectors",
    )

    p_run = sub.add_parser("run", help="run one experiment")
    p_run.add_argument("--trace", default=None, metavar="PATH",
                       help="write a Chrome trace-event JSON of the "
                            "run (open in Perfetto)")
    p_run.add_argument("--metrics", action="store_true",
                       help="print the pipeline metrics registry")
    _add_experiment_args(p_run)
    _add_spec_arg(p_run)

    p_sweep = sub.add_parser("sweep", help="EDP heap sweep")
    _add_experiment_args(p_sweep)
    p_sweep.add_argument(
        "--heaps", type=int, nargs="+",
        default=[32, 48, 64, 80, 96, 112, 128],
    )
    p_sweep.add_argument(
        "--collectors", nargs="+",
        default=["SemiSpace", "MarkSweep", "GenCopy", "GenMS"],
    )

    p_campaign = sub.add_parser(
        "campaign",
        help="run an experiment matrix in parallel with caching",
    )
    p_campaign.add_argument("--benchmarks", nargs="+", default=None)
    p_campaign.add_argument("--vms", nargs="+", default=["jikes"],
                            choices=tuple(registry.VMS.names()))
    p_campaign.add_argument("--platforms", nargs="+", default=["p6"],
                            choices=tuple(registry.PLATFORMS.names()))
    p_campaign.add_argument(
        "--collectors", nargs="+", default=["default"],
        help="collector names; 'default' uses each VM's default "
             "(unsupported VM/collector pairs are skipped)",
    )
    p_campaign.add_argument("--heaps", type=int, nargs="+",
                            default=[64])
    p_campaign.add_argument("--seeds", type=int, nargs="+",
                            default=[42])
    p_campaign.add_argument("--input-scale", type=float, default=1.0)
    p_campaign.add_argument(
        "--derive-seeds", action="store_true",
        help="derive a unique, stable seed per cell from each base seed",
    )
    _add_spec_arg(p_campaign)
    p_campaign.add_argument("--workers", type=int, default=1,
                            help="worker processes (1 = in-process)")
    p_campaign.add_argument(
        "--cache-dir", default=None,
        help="on-disk cell cache (default: $REPRO_CACHE_DIR or "
             "~/.cache/repro/campaign)",
    )
    p_campaign.add_argument("--no-cache", action="store_true",
                            help="disable the on-disk cell cache")
    p_campaign.add_argument("--timeout", type=float, default=None,
                            help="per-cell wall-clock budget in seconds")
    p_campaign.add_argument("--retries", type=int, default=1,
                            help="retries per failing cell")
    p_campaign.add_argument("--output", default=None,
                            help="write a JSON campaign report here")
    p_campaign.add_argument(
        "--trace-dir", default=None, metavar="DIR",
        help="write Chrome traces here: campaign.json (wall-clock "
             "cells) plus one sim-clock trace per executed cell",
    )
    p_campaign.add_argument(
        "--artifact-dir", default=None, metavar="DIR",
        help="content-addressed simulation artifact store; cells "
             "sharing a simulation identity reuse one recorded "
             "execution across runs",
    )

    p_spec = sub.add_parser(
        "spec", help="validate, show, or hash scenario spec files"
    )
    p_spec.add_argument("action", choices=("validate", "show", "hash"))
    p_spec.add_argument("files", nargs="+",
                        help="TOML/JSON scenario spec files")

    p_thermal = sub.add_parser("thermal",
                               help="Figure 1 thermal experiment")
    p_thermal.add_argument("--benchmark", default="_222_mpegaudio")
    p_thermal.add_argument("--repetitions", type=int, default=30)
    p_thermal.add_argument("--fan-off", action="store_true")

    p_val = sub.add_parser(
        "validate", help="attribution error vs sampling period"
    )
    p_val.add_argument("--benchmark", default="_202_jess")
    _add_experiment_args(p_val, positional_benchmark=False)
    _add_spec_arg(p_val)
    p_val.add_argument("--periods", type=float, nargs="+",
                       default=[40.0, 200.0, 1000.0, 10000.0])

    p_overhead = sub.add_parser(
        "overhead",
        help="accuracy-vs-overhead frontier from one simulation "
             "(simulate once, measure at many DAQ periods)",
    )
    p_overhead.add_argument("--benchmark", default="_202_jess")
    _add_experiment_args(p_overhead, positional_benchmark=False)
    _add_spec_arg(p_overhead)
    p_overhead.add_argument("--periods", type=float, nargs="+",
                            default=[40.0, 200.0, 1000.0, 10000.0],
                            help="DAQ sampling periods in microseconds")
    p_overhead.add_argument(
        "--artifact-dir", default=None,
        help="simulation artifact store (default: "
             "$REPRO_ARTIFACT_DIR or ~/.cache/repro/artifacts)",
    )
    p_overhead.add_argument("--no-artifacts", action="store_true",
                            help="skip the artifact store (always "
                                 "simulate, never persist)")
    p_overhead.add_argument("--output", default=None, metavar="PATH",
                            help="write the frontier as JSON here")
    p_overhead.add_argument(
        "--replicates", type=int, default=0, metavar="N",
        help="bootstrap N noisy re-measurements per period and add a "
             "95%% CI error bar to the CPU-energy column (0 = off)",
    )

    p_uncertainty = sub.add_parser(
        "uncertainty",
        help="bootstrap measurement uncertainty: N noisy "
             "re-measurements of one recorded execution, reported as "
             "per-component energy distributions with CIs",
    )
    p_uncertainty.add_argument("--benchmark", default="_202_jess")
    _add_experiment_args(p_uncertainty, positional_benchmark=False)
    _add_spec_arg(p_uncertainty)
    p_uncertainty.add_argument(
        "--replicates", type=int, default=32, metavar="N",
        help="bootstrap replicate count (default 32)",
    )
    p_uncertainty.add_argument(
        "--ci", type=float, default=0.95, metavar="LEVEL",
        help="confidence level for the percentile intervals "
             "(default 0.95)",
    )
    p_uncertainty.add_argument(
        "--adc-bits", type=int, default=12, metavar="BITS",
        help="sense-channel ADC resolution (0 disables quantization)",
    )
    p_uncertainty.add_argument(
        "--daq-jitter", type=float, default=0.05, metavar="FRAC",
        help="DAQ sample-clock jitter, one sigma, as a fraction of "
             "the period (default 0.05)",
    )
    p_uncertainty.add_argument(
        "--hpm-jitter", type=float, default=0.10, metavar="FRAC",
        help="HPM timer-interrupt latency, one sigma, as a fraction "
             "of the period (default 0.10)",
    )
    p_uncertainty.add_argument(
        "--artifact-dir", default=None,
        help="simulation artifact store (default: "
             "$REPRO_ARTIFACT_DIR or ~/.cache/repro/artifacts)",
    )
    p_uncertainty.add_argument(
        "--no-artifacts", action="store_true",
        help="skip the artifact store (always simulate, never persist)",
    )
    p_uncertainty.add_argument("--output", default=None, metavar="PATH",
                               help="write the report as JSON here")

    p_pauses = sub.add_parser(
        "pauses", help="GC pause statistics and MMU curve"
    )
    _add_experiment_args(p_pauses)
    _add_spec_arg(p_pauses)

    p_export = sub.add_parser(
        "export", help="run one experiment and export JSON + CSV"
    )
    _add_experiment_args(p_export)
    _add_spec_arg(p_export)
    p_export.add_argument("--output", default="experiment",
                          help="output path prefix")

    p_workload = sub.add_parser(
        "workload", help="characterize a benchmark's memory behavior"
    )
    p_workload.add_argument("benchmark")
    p_workload.add_argument("--seed", type=int, default=42)

    p_trace = sub.add_parser(
        "trace", help="summarize a recorded Chrome trace"
    )
    p_trace.add_argument("file", help="trace JSON written by "
                                      "`repro run --trace`")
    p_trace.add_argument("--top", type=int, default=10,
                         help="spans to show per clock, by self-time")

    from repro.serve.server import DEFAULT_PORT

    p_serve = sub.add_parser(
        "serve", help="run the HTTP experiment service "
                      "(or `serve top` to watch one live)"
    )
    p_serve.add_argument("action", nargs="?", default=None,
                         choices=("top",),
                         help="'top': live metrics view of a running "
                              "service instead of serving")
    p_serve.add_argument("--server", default=None,
                         help="service URL for `serve top` (default: "
                              "$REPRO_SERVER or "
                              f"http://127.0.0.1:{DEFAULT_PORT})")
    p_serve.add_argument("--interval", type=float, default=2.0,
                         help="`serve top` refresh period in seconds")
    p_serve.add_argument("--once", action="store_true",
                         help="`serve top`: print one snapshot and "
                              "exit (scripts, smoke tests)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=DEFAULT_PORT,
                         help=f"TCP port (default {DEFAULT_PORT}; "
                              "0 picks an ephemeral port)")
    p_serve.add_argument("--queue-size", type=int, default=64,
                         help="bounded submission queue; a full queue "
                              "answers 429 + Retry-After")
    p_serve.add_argument("--job-workers", "--workers", type=int,
                         default=2, dest="job_workers",
                         help="concurrent jobs (worker slots)")
    p_serve.add_argument("--worker-mode", default="thread",
                         choices=("thread", "process"),
                         help="where jobs execute: in-process threads "
                              "(share one GIL) or a process pool that "
                              "scales CPU-bound cells with cores")
    p_serve.add_argument("--cell-workers", type=int, default=1,
                         help="worker processes per job's campaign "
                              "(1 = in-thread)")
    p_serve.add_argument("--store-shards", type=int, default=1,
                         help="consistent-hash shards for the result "
                              "store namespace (all instances sharing "
                              "a store must agree)")
    p_serve.add_argument("--lease-ttl", type=float, default=30.0,
                         help="seconds before an unrefreshed "
                              "single-flight lease counts as stale "
                              "and is taken over")
    p_serve.add_argument("--cache-dir", default=None,
                         help="campaign cell cache (default: "
                              "$REPRO_CACHE_DIR or "
                              "~/.cache/repro/campaign)")
    p_serve.add_argument("--no-cache", action="store_true",
                         help="disable the campaign cell cache")
    p_serve.add_argument("--result-dir", default=None,
                         help="content-addressed result store "
                              "(default: $REPRO_RESULT_DIR or "
                              "~/.cache/repro/results)")
    p_serve.add_argument("--timeout", type=float, default=None,
                         help="per-cell wall-clock budget in seconds")
    p_serve.add_argument("--retries", type=int, default=1,
                         help="retries per failing cell")
    p_serve.add_argument("--drain-timeout", type=float, default=30.0,
                         help="seconds to finish queued/in-flight "
                              "jobs on SIGTERM/SIGINT")
    p_serve.add_argument("--trace-jobs", action="store_true",
                         help="record a distributed per-job trace "
                              "(service + worker spans, merged at "
                              "GET /v1/jobs/{id}/trace)")

    p_submit = sub.add_parser(
        "submit", help="submit a scenario spec to a repro serve"
    )
    p_submit.add_argument("spec", help="TOML/JSON scenario spec file")
    p_submit.add_argument("--server", default=None,
                          help="service URL (default: $REPRO_SERVER "
                               f"or http://127.0.0.1:{DEFAULT_PORT})")
    p_submit.add_argument("--wait", action="store_true",
                          help="poll until the job finishes (also "
                               "retries 429s per Retry-After)")
    p_submit.add_argument("--timeout", type=float, default=300.0,
                          help="overall --wait budget in seconds")
    p_submit.add_argument("--output", default=None, metavar="PATH",
                          help="write the fetched result JSON here "
                               "(implies the job must complete)")

    p_jobs = sub.add_parser(
        "jobs", help="list a server's jobs, or show/await one"
    )
    p_jobs.add_argument("id", nargs="?", default=None,
                        help="job id (spec hash); omit to list all")
    p_jobs.add_argument("--server", default=None,
                        help="service URL (default: $REPRO_SERVER "
                             f"or http://127.0.0.1:{DEFAULT_PORT})")
    p_jobs.add_argument("--wait", action="store_true",
                        help="poll the named job to completion")
    p_jobs.add_argument("--timeout", type=float, default=300.0,
                        help="overall --wait budget in seconds")
    p_jobs.add_argument("--trace", nargs="?", const="", default=None,
                        metavar="PATH",
                        help="fetch the job's merged distributed "
                             "trace, write it (default "
                             "<id12>.trace.json), and summarize it")

    p_cache = sub.add_parser(
        "cache", help="inspect, prune, or trace the on-disk caches"
    )
    p_cache.add_argument("action",
                         choices=("stats", "prune", "lineage"))
    p_cache.add_argument("--max-bytes", type=_parse_size, default=None,
                         help="prune target per store (e.g. 500M, 2G)")
    p_cache.add_argument(
        "--stale", action="store_true",
        help="lineage: show only groups written by different code; "
             "prune: evict those entries (missing envelopes included)",
    )
    p_cache.add_argument("--cache-dir", default=None,
                         help="campaign cell cache root override")
    p_cache.add_argument("--result-dir", default=None,
                         help="result store root override")
    p_cache.add_argument("--artifact-dir", default=None,
                         help="simulation artifact store root override")

    p_replay = sub.add_parser(
        "replay",
        help="re-execute a stored result and byte-diff the replay",
    )
    p_replay.add_argument(
        "target", nargs="?", default=None,
        help="result hash (full or unique prefix) or a scenario spec "
             "file whose hash names the stored artifact",
    )
    p_replay.add_argument("--all", action="store_true",
                          help="replay every result in the store")
    p_replay.add_argument("--result-dir", default=None,
                          help="result store root (default: "
                               "$REPRO_RESULT_DIR or "
                               "~/.cache/repro/results)")
    p_replay.add_argument("--store-shards", type=int, default=1,
                          help="shard count the store was written with")
    p_replay.add_argument("--workers", type=int, default=1,
                          help="worker processes for the replay run")
    p_replay.add_argument("--diff-limit", type=int, default=16,
                          help="differing fields to print per drifted "
                               "result")

    return parser


COMMANDS = {
    "list": cmd_list,
    "run": cmd_run,
    "sweep": cmd_sweep,
    "campaign": cmd_campaign,
    "spec": cmd_spec,
    "thermal": cmd_thermal,
    "validate": cmd_validate,
    "overhead": cmd_overhead,
    "uncertainty": cmd_uncertainty,
    "pauses": cmd_pauses,
    "export": cmd_export,
    "workload": cmd_workload,
    "trace": cmd_trace,
    "serve": cmd_serve,
    "submit": cmd_submit,
    "jobs": cmd_jobs,
    "cache": cmd_cache,
    "replay": cmd_replay,
}


def main(argv=None):
    args = build_parser().parse_args(argv)
    obs_logging.configure(verbose=args.verbose, quiet=args.quiet)
    try:
        return COMMANDS[args.command](args)
    except BrokenPipeError:
        # Downstream pipe (e.g. `| head`) closed early; exit quietly
        # with the shell's 128+SIGPIPE convention.  Redirect stdout to
        # devnull first so the interpreter's final flush cannot raise.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 141


if __name__ == "__main__":
    sys.exit(main())
