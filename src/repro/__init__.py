"""repro — reproduction of "Techniques for Real-System Characterization of
Java Virtual Machine Energy and Power Behavior" (Contreras & Martonosi,
IISWC 2006).

The package simulates the paper's entire experimental stack:

* two hardware platforms (a Pentium M development board and an Intel
  PXA255/XScale development board) with cache, power, and thermal models,
* two Java virtual machines (a Jikes-RVM-like adaptive VM and a
  Kaffe-like JIT VM) with real garbage collectors, class loading, and
  compilation subsystems operating on a simulated object heap,
* the paper's physical measurement infrastructure (sense resistors, a
  40 microsecond DAQ, a component-ID I/O port, and timer-sampled hardware
  performance counters), and
* the offline analysis that decomposes energy/power per JVM component.

Quickstart::

    from repro import run_experiment

    result = run_experiment(benchmark="_213_javac", vm="jikes",
                            collector="SemiSpace", heap_mb=32)
    print(result.summary())

or, declaratively (see docs/SCENARIOS.md)::

    from repro import ScenarioSpec

    spec = ScenarioSpec.from_file("examples/scenarios/quickstart.toml")
    config = spec.validate().experiment_config()

Components (platforms, VMs, collectors, workloads, extensions) live in
capability-aware registries (:mod:`repro.registry`); third-party code
can plug in new ones through the ``register_*`` entry points.
"""

from repro.core.experiment import (
    Experiment,
    ExperimentConfig,
    ExperimentResult,
    run_experiment,
)
from repro.core.metrics import EnergyBreakdown, edp
from repro.hardware.platform import Platform, make_platform
from repro.jvm.components import Component
from repro.registry import (
    COLLECTORS,
    EXTENSIONS,
    PLATFORMS,
    VMS,
    WORKLOADS,
    register_collector,
    register_extension,
    register_platform,
    register_vm,
    register_workload,
)
from repro.spec import ScenarioSpec, build_platform, build_vm
from repro.workloads import all_benchmarks, get_benchmark

__version__ = "1.0.0"

__all__ = [
    "COLLECTORS",
    "Component",
    "EXTENSIONS",
    "EnergyBreakdown",
    "Experiment",
    "ExperimentConfig",
    "ExperimentResult",
    "PLATFORMS",
    "Platform",
    "ScenarioSpec",
    "VMS",
    "WORKLOADS",
    "all_benchmarks",
    "build_platform",
    "build_vm",
    "edp",
    "get_benchmark",
    "make_platform",
    "register_collector",
    "register_extension",
    "register_platform",
    "register_vm",
    "register_workload",
    "run_experiment",
    "__version__",
]
