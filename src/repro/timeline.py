"""Ground-truth execution timeline.

A VM run produces an :class:`ExecutionTimeline`: an ordered, gap-free
sequence of :class:`Segment` objects, each describing an interval of CPU
cycles during which exactly one JVM component was executing, together with
the microarchitectural activity (instructions, cache behavior) and the
power draw the hardware model computed for that interval.

Cycles vs wall time: segments are accounted in *core cycles*; the wall
duration of a segment depends on the clock actually delivered while it ran
(DVFS operating point, thermal-throttle duty cycle).  The scheduler stamps
each segment with its wall duration (``wall_s``); when absent, the nominal
clock is used.

The timeline is the *ground truth* that the simulated measurement
infrastructure (:mod:`repro.measurement`) observes imperfectly — through a
40 microsecond DAQ window, sensor noise, and timer-driven HPM sampling —
exactly as the paper's physical infrastructure observed the real machines.
Keeping ground truth and measurement separate lets the test suite quantify
attribution error, something the paper could only argue qualitatively.
"""

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import TimelineError


@dataclass
class Segment:
    """One contiguous interval of execution by a single component.

    Cycle bounds are half-open: ``[start_cycle, end_cycle)``.

    ``cpu_power_w`` / ``mem_power_w`` are the average draws over the
    segment as computed by the platform power model; the DAQ adds
    sampling-window effects and sensor noise on top when the segment is
    "measured".
    """

    start_cycle: int
    end_cycle: int
    component: int
    instructions: int = 0
    l2_accesses: int = 0
    l2_misses: int = 0
    mem_accesses: int = 0
    cpu_power_w: float = 0.0
    mem_power_w: float = 0.0
    wall_s: Optional[float] = None
    tag: str = ""

    @property
    def cycles(self):
        """Number of core cycles covered by this segment."""
        return self.end_cycle - self.start_cycle

    @property
    def ipc(self):
        """Instructions per cycle achieved during the segment."""
        if self.cycles <= 0:
            return 0.0
        return self.instructions / self.cycles

    @property
    def l2_miss_rate(self):
        """L2 misses per L2 access (0.0 when the segment made none)."""
        if self.l2_accesses <= 0:
            return 0.0
        return self.l2_misses / self.l2_accesses

    def duration_s(self, clock_hz):
        """Wall-clock duration; prefers the stamped wall time."""
        if self.wall_s is not None:
            return self.wall_s
        return self.cycles / float(clock_hz)

    def cpu_energy_j(self, clock_hz):
        """CPU energy consumed during the segment."""
        return self.cpu_power_w * self.duration_s(clock_hz)

    def mem_energy_j(self, clock_hz):
        """Main-memory energy consumed during the segment."""
        return self.mem_power_w * self.duration_s(clock_hz)


@dataclass
class TimelineArrays:
    """Vectorized (NumPy) view of a timeline, used by the samplers.

    ``starts_s`` / ``ends_s`` are wall-time segment bounds (seconds from
    run start); the cycle bounds are retained for counter work.
    """

    starts_s: np.ndarray
    ends_s: np.ndarray
    start_cycles: np.ndarray
    end_cycles: np.ndarray
    components: np.ndarray
    cpu_power: np.ndarray
    mem_power: np.ndarray
    instructions: np.ndarray
    l2_accesses: np.ndarray
    l2_misses: np.ndarray
    mem_accesses: np.ndarray
    clock_hz: float


class ExecutionTimeline:
    """Append-only, gap-free sequence of execution segments.

    Segments must be appended in execution order; each segment must begin
    exactly where the previous one ended (in cycles).  The VM guarantees
    this by routing every emitted segment through :meth:`append`.
    """

    def __init__(self, clock_hz):
        if clock_hz <= 0:
            raise TimelineError(f"clock_hz must be positive, got {clock_hz}")
        self.clock_hz = float(clock_hz)
        self._segments = []
        # Per-segment wall durations, captured once at append time.  Both
        # duration_s and to_arrays() derive from this single list so the
        # scalar total and the vectorized cumulative sum cannot drift
        # apart over long timelines.
        self._durations = []
        self._total_s = None  # lazily recomputed fsum cache

    def __len__(self):
        return len(self._segments)

    def __iter__(self):
        return iter(self._segments)

    def __getitem__(self, index):
        return self._segments[index]

    @property
    def segments(self):
        """The list of segments (do not mutate)."""
        return self._segments

    def append(self, segment):
        """Append *segment*, enforcing contiguity and ordering."""
        if segment.end_cycle < segment.start_cycle:
            raise TimelineError(
                f"segment ends before it starts: {segment.start_cycle}.."
                f"{segment.end_cycle}"
            )
        if self._segments:
            prev_end = self._segments[-1].end_cycle
            if segment.start_cycle != prev_end:
                raise TimelineError(
                    f"segment starts at cycle {segment.start_cycle}, "
                    f"expected {prev_end} (timelines must be gap-free)"
                )
        if segment.cycles == 0:
            return  # zero-length segments carry no energy or time
        self._segments.append(segment)
        self._durations.append(segment.duration_s(self.clock_hz))
        self._total_s = None

    @property
    def start_cycle(self):
        return self._segments[0].start_cycle if self._segments else 0

    @property
    def end_cycle(self):
        return self._segments[-1].end_cycle if self._segments else 0

    @property
    def total_cycles(self):
        return self.end_cycle - self.start_cycle

    @property
    def duration_s(self):
        """Total wall-clock duration covered by the timeline.

        Computed as an exactly rounded sum (:func:`math.fsum`) over the
        same per-segment durations that :meth:`to_arrays` accumulates,
        so the two stay in agreement even for very long timelines where
        naive incremental accumulation drifts.
        """
        if self._total_s is None:
            self._total_s = math.fsum(self._durations)
        return self._total_s

    def component_cycles(self):
        """Ground-truth cycles per component ID, as a dict."""
        out = {}
        for seg in self._segments:
            out[seg.component] = out.get(seg.component, 0) + seg.cycles
        return out

    def component_seconds(self):
        """Ground-truth wall seconds per component ID."""
        out = {}
        for seg in self._segments:
            out[seg.component] = (
                out.get(seg.component, 0.0)
                + seg.duration_s(self.clock_hz)
            )
        return out

    def component_instructions(self):
        """Ground-truth retired instructions per component ID."""
        out = {}
        for seg in self._segments:
            out[seg.component] = (
                out.get(seg.component, 0) + seg.instructions
            )
        return out

    def cpu_energy_j(self):
        """Ground-truth total CPU energy over the timeline."""
        return sum(s.cpu_energy_j(self.clock_hz) for s in self._segments)

    def mem_energy_j(self):
        """Ground-truth total main-memory energy over the timeline."""
        return sum(s.mem_energy_j(self.clock_hz) for s in self._segments)

    def component_cpu_energy_j(self):
        """Ground-truth CPU energy per component ID."""
        out = {}
        for seg in self._segments:
            out[seg.component] = (
                out.get(seg.component, 0.0)
                + seg.cpu_energy_j(self.clock_hz)
            )
        return out

    def to_arrays(self):
        """Return a :class:`TimelineArrays` vectorized view for samplers."""
        if not self._segments:
            raise TimelineError("cannot vectorize an empty timeline")
        n = len(self._segments)
        start_cycles = np.empty(n, dtype=np.int64)
        end_cycles = np.empty(n, dtype=np.int64)
        components = np.empty(n, dtype=np.int16)
        cpu_power = np.empty(n, dtype=np.float64)
        mem_power = np.empty(n, dtype=np.float64)
        instructions = np.empty(n, dtype=np.int64)
        l2_accesses = np.empty(n, dtype=np.int64)
        l2_misses = np.empty(n, dtype=np.int64)
        mem_accesses = np.empty(n, dtype=np.int64)
        for i, seg in enumerate(self._segments):
            start_cycles[i] = seg.start_cycle
            end_cycles[i] = seg.end_cycle
            components[i] = seg.component
            cpu_power[i] = seg.cpu_power_w
            mem_power[i] = seg.mem_power_w
            instructions[i] = seg.instructions
            l2_accesses[i] = seg.l2_accesses
            l2_misses[i] = seg.l2_misses
            mem_accesses[i] = seg.mem_accesses
        durations = np.asarray(self._durations, dtype=np.float64)
        ends_s = np.cumsum(durations)
        starts_s = ends_s - durations
        return TimelineArrays(
            starts_s=starts_s,
            ends_s=ends_s,
            start_cycles=start_cycles,
            end_cycles=end_cycles,
            components=components,
            cpu_power=cpu_power,
            mem_power=mem_power,
            instructions=instructions,
            l2_accesses=l2_accesses,
            l2_misses=l2_misses,
            mem_accesses=mem_accesses,
            clock_hz=self.clock_hz,
        )

    def validate(self):
        """Re-check all invariants over the whole timeline (for tests)."""
        for prev, cur in zip(self._segments, self._segments[1:]):
            if cur.start_cycle != prev.end_cycle:
                raise TimelineError(
                    f"gap or overlap between cycle {prev.end_cycle} and "
                    f"{cur.start_cycle}"
                )
        for seg in self._segments:
            if seg.cycles <= 0:
                raise TimelineError("zero or negative length segment stored")
            if seg.wall_s is not None and seg.wall_s <= 0:
                raise TimelineError("segment has non-positive wall time")
        if self._segments:
            cumulative = float(self.to_arrays().ends_s[-1])
            if not math.isclose(self.duration_s, cumulative,
                                rel_tol=1e-9, abs_tol=1e-12):
                raise TimelineError(
                    f"duration_s ({self.duration_s!r}) disagrees with the "
                    f"cumulative segment sum ({cumulative!r})"
                )
        return True
