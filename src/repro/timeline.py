"""Ground-truth execution timeline.

A VM run produces an :class:`ExecutionTimeline`: an ordered, gap-free
sequence of execution segments, each describing an interval of CPU
cycles during which exactly one JVM component was executing, together with
the microarchitectural activity (instructions, cache behavior) and the
power draw the hardware model computed for that interval.

Cycles vs wall time: segments are accounted in *core cycles*; the wall
duration of a segment depends on the clock actually delivered while it ran
(DVFS operating point, thermal-throttle duty cycle).  The scheduler stamps
each segment with its wall duration (``wall_s``); when absent, the nominal
clock is used.

Storage is structure-of-arrays: the timeline grows preallocated NumPy
column buffers (amortized doubling), so appending a segment is a handful
of array stores and appending a whole *batch* of segments (the vectorized
execution engine's unit of work) is a handful of slice assignments.
:class:`Segment` objects are materialized lazily, only when somebody
iterates the timeline; the measurement infrastructure reads the columns
directly through :meth:`to_arrays` with no per-segment object round-trip.

The timeline is the *ground truth* that the simulated measurement
infrastructure (:mod:`repro.measurement`) observes imperfectly — through a
40 microsecond DAQ window, sensor noise, and timer-driven HPM sampling —
exactly as the paper's physical infrastructure observed the real machines.
Keeping ground truth and measurement separate lets the test suite quantify
attribution error, something the paper could only argue qualitatively.
"""

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import TimelineError


@dataclass
class Segment:
    """One contiguous interval of execution by a single component.

    Cycle bounds are half-open: ``[start_cycle, end_cycle)``.

    ``cpu_power_w`` / ``mem_power_w`` are the average draws over the
    segment as computed by the platform power model; the DAQ adds
    sampling-window effects and sensor noise on top when the segment is
    "measured".
    """

    start_cycle: int
    end_cycle: int
    component: int
    instructions: int = 0
    l2_accesses: int = 0
    l2_misses: int = 0
    mem_accesses: int = 0
    cpu_power_w: float = 0.0
    mem_power_w: float = 0.0
    wall_s: Optional[float] = None
    tag: str = ""

    @property
    def cycles(self):
        """Number of core cycles covered by this segment."""
        return self.end_cycle - self.start_cycle

    @property
    def ipc(self):
        """Instructions per cycle achieved during the segment."""
        if self.cycles <= 0:
            return 0.0
        return self.instructions / self.cycles

    @property
    def l2_miss_rate(self):
        """L2 misses per L2 access (0.0 when the segment made none)."""
        if self.l2_accesses <= 0:
            return 0.0
        return self.l2_misses / self.l2_accesses

    def duration_s(self, clock_hz):
        """Wall-clock duration; prefers the stamped wall time."""
        if self.wall_s is not None:
            return self.wall_s
        return self.cycles / float(clock_hz)

    def cpu_energy_j(self, clock_hz):
        """CPU energy consumed during the segment."""
        return self.cpu_power_w * self.duration_s(clock_hz)

    def mem_energy_j(self, clock_hz):
        """Main-memory energy consumed during the segment."""
        return self.mem_power_w * self.duration_s(clock_hz)


@dataclass
class TimelineArrays:
    """Vectorized (NumPy) view of a timeline, used by the samplers.

    ``starts_s`` / ``ends_s`` are wall-time segment bounds (seconds from
    run start); the cycle bounds are retained for counter work.  The
    arrays are read-only views into the timeline's column buffers — do
    not mutate them.
    """

    starts_s: np.ndarray
    ends_s: np.ndarray
    start_cycles: np.ndarray
    end_cycles: np.ndarray
    components: np.ndarray
    cpu_power: np.ndarray
    mem_power: np.ndarray
    instructions: np.ndarray
    l2_accesses: np.ndarray
    l2_misses: np.ndarray
    mem_accesses: np.ndarray
    clock_hz: float


#: Initial column-buffer capacity (segments); doubled on exhaustion.
_INITIAL_CAPACITY = 1024

#: Schema tag on :meth:`ExecutionTimeline.to_columns` snapshots.
COLUMNS_SCHEMA = "repro-timeline-columns-v1"


class ExecutionTimeline:
    """Append-only, gap-free sequence of execution segments.

    Segments must be appended in execution order; each segment must begin
    exactly where the previous one ended (in cycles).  The VM guarantees
    this by routing every emitted segment through :meth:`append` or
    :meth:`append_batch`.
    """

    def __init__(self, clock_hz):
        if clock_hz <= 0:
            raise TimelineError(f"clock_hz must be positive, got {clock_hz}")
        self.clock_hz = float(clock_hz)
        self._n = 0
        self._alloc(_INITIAL_CAPACITY)
        self._tags = []
        # duration_s and to_arrays() both derive from the _duration
        # column, so the scalar total and the vectorized cumulative sum
        # cannot drift apart over long timelines.
        self._total_s = None   # lazily recomputed fsum cache
        self._ends_s = None    # lazily recomputed cumsum cache

    def _alloc(self, capacity):
        self._start_cycle = np.empty(capacity, dtype=np.int64)
        self._end_cycle = np.empty(capacity, dtype=np.int64)
        self._component = np.empty(capacity, dtype=np.int16)
        self._instructions = np.empty(capacity, dtype=np.int64)
        self._l2_accesses = np.empty(capacity, dtype=np.int64)
        self._l2_misses = np.empty(capacity, dtype=np.int64)
        self._mem_accesses = np.empty(capacity, dtype=np.int64)
        self._cpu_power = np.empty(capacity, dtype=np.float64)
        self._mem_power = np.empty(capacity, dtype=np.float64)
        self._duration = np.empty(capacity, dtype=np.float64)

    @property
    def _capacity(self):
        return len(self._start_cycle)

    def _columns(self):
        return (
            "_start_cycle", "_end_cycle", "_component", "_instructions",
            "_l2_accesses", "_l2_misses", "_mem_accesses", "_cpu_power",
            "_mem_power", "_duration",
        )

    def _grow(self, needed):
        capacity = self._capacity
        while capacity < needed:
            capacity *= 2
        for name in self._columns():
            old = getattr(self, name)
            new = np.empty(capacity, dtype=old.dtype)
            new[: self._n] = old[: self._n]
            setattr(self, name, new)

    def __len__(self):
        return self._n

    def __iter__(self):
        for i in range(self._n):
            yield self.segment(i)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self.segment(i)
                    for i in range(*index.indices(self._n))]
        if index < 0:
            index += self._n
        if not (0 <= index < self._n):
            raise IndexError("segment index out of range")
        return self.segment(index)

    def segment(self, i):
        """Materialize the *i*-th segment as a :class:`Segment` view.

        The returned object is a copy of the stored row; mutating it does
        not write back.  ``wall_s`` always carries the stored per-segment
        wall duration.
        """
        return Segment(
            start_cycle=int(self._start_cycle[i]),
            end_cycle=int(self._end_cycle[i]),
            component=int(self._component[i]),
            instructions=int(self._instructions[i]),
            l2_accesses=int(self._l2_accesses[i]),
            l2_misses=int(self._l2_misses[i]),
            mem_accesses=int(self._mem_accesses[i]),
            cpu_power_w=float(self._cpu_power[i]),
            mem_power_w=float(self._mem_power[i]),
            wall_s=float(self._duration[i]),
            tag=self._tags[i],
        )

    @property
    def segments(self):
        """Materialized list of all segments (do not mutate)."""
        return [self.segment(i) for i in range(self._n)]

    @property
    def tags(self):
        """Per-segment tag strings (do not mutate)."""
        return self._tags

    def append(self, segment):
        """Append *segment*, enforcing contiguity and ordering."""
        if segment.end_cycle < segment.start_cycle:
            raise TimelineError(
                f"segment ends before it starts: {segment.start_cycle}.."
                f"{segment.end_cycle}"
            )
        if self._n:
            prev_end = self._end_cycle[self._n - 1]
            if segment.start_cycle != prev_end:
                raise TimelineError(
                    f"segment starts at cycle {segment.start_cycle}, "
                    f"expected {prev_end} (timelines must be gap-free)"
                )
        if segment.cycles == 0:
            return  # zero-length segments carry no energy or time
        n = self._n
        if n + 1 > self._capacity:
            self._grow(n + 1)
        self._start_cycle[n] = segment.start_cycle
        self._end_cycle[n] = segment.end_cycle
        self._component[n] = segment.component
        self._instructions[n] = segment.instructions
        self._l2_accesses[n] = segment.l2_accesses
        self._l2_misses[n] = segment.l2_misses
        self._mem_accesses[n] = segment.mem_accesses
        self._cpu_power[n] = segment.cpu_power_w
        self._mem_power[n] = segment.mem_power_w
        self._duration[n] = segment.duration_s(self.clock_hz)
        self._tags.append(segment.tag)
        self._n = n + 1
        self._total_s = None
        self._ends_s = None

    def append_batch(self, start_cycles, end_cycles, component,
                     instructions, l2_accesses, l2_misses, mem_accesses,
                     cpu_power, mem_power, durations, tag=""):
        """Append a contiguous run of segments from column arrays.

        All array arguments must have the same length; ``component`` and
        ``tag`` are scalars shared by the whole batch (a batch is always
        the output of one activity).  The batch must be internally
        contiguous and start where the timeline currently ends.
        """
        k = len(start_cycles)
        if k == 0:
            return
        if self._n and int(start_cycles[0]) != int(
                self._end_cycle[self._n - 1]):
            raise TimelineError(
                f"batch starts at cycle {int(start_cycles[0])}, expected "
                f"{int(self._end_cycle[self._n - 1])} (timelines must be "
                f"gap-free)"
            )
        cycles = np.asarray(end_cycles) - np.asarray(start_cycles)
        if (cycles <= 0).any():
            raise TimelineError(
                "batch contains a zero or negative length segment"
            )
        if k > 1 and (start_cycles[1:] != end_cycles[:-1]).any():
            raise TimelineError("batch is not internally contiguous")
        n = self._n
        if n + k > self._capacity:
            self._grow(n + k)
        sl = slice(n, n + k)
        self._start_cycle[sl] = start_cycles
        self._end_cycle[sl] = end_cycles
        self._component[sl] = component
        self._instructions[sl] = instructions
        self._l2_accesses[sl] = l2_accesses
        self._l2_misses[sl] = l2_misses
        self._mem_accesses[sl] = mem_accesses
        self._cpu_power[sl] = cpu_power
        self._mem_power[sl] = mem_power
        self._duration[sl] = durations
        self._tags.extend([tag] * k)
        self._n = n + k
        self._total_s = None
        self._ends_s = None

    @property
    def start_cycle(self):
        return int(self._start_cycle[0]) if self._n else 0

    @property
    def end_cycle(self):
        return int(self._end_cycle[self._n - 1]) if self._n else 0

    @property
    def total_cycles(self):
        return self.end_cycle - self.start_cycle

    @property
    def duration_s(self):
        """Total wall-clock duration covered by the timeline.

        Computed as an exactly rounded sum (:func:`math.fsum`) over the
        same per-segment durations that :meth:`to_arrays` accumulates,
        so the two stay in agreement even for very long timelines where
        naive incremental accumulation drifts.
        """
        if self._total_s is None:
            self._total_s = math.fsum(self._duration[: self._n])
        return self._total_s

    def _component_sums(self, weights):
        """Per-component sums of *weights* in encounter order."""
        comps = self._component[: self._n]
        out = {}
        uniq, inverse = np.unique(comps, return_inverse=True)
        sums = np.bincount(inverse, weights=weights)
        for cid, total in zip(uniq, sums):
            out[int(cid)] = total
        return out

    def component_cycles(self):
        """Ground-truth cycles per component ID, as a dict."""
        cycles = (
            self._end_cycle[: self._n] - self._start_cycle[: self._n]
        ).astype(np.float64)
        return {
            cid: int(v) for cid, v in self._component_sums(cycles).items()
        }

    def component_seconds(self):
        """Ground-truth wall seconds per component ID."""
        return {
            cid: float(v)
            for cid, v in self._component_sums(
                self._duration[: self._n]).items()
        }

    def component_instructions(self):
        """Ground-truth retired instructions per component ID."""
        instr = self._instructions[: self._n].astype(np.float64)
        return {
            cid: int(v) for cid, v in self._component_sums(instr).items()
        }

    def cpu_energy_j(self):
        """Ground-truth total CPU energy over the timeline."""
        n = self._n
        return float(np.dot(self._cpu_power[:n], self._duration[:n]))

    def mem_energy_j(self):
        """Ground-truth total main-memory energy over the timeline."""
        n = self._n
        return float(np.dot(self._mem_power[:n], self._duration[:n]))

    def component_cpu_energy_j(self):
        """Ground-truth CPU energy per component ID."""
        n = self._n
        energy = self._cpu_power[:n] * self._duration[:n]
        return {
            cid: float(v) for cid, v in self._component_sums(energy).items()
        }

    def to_arrays(self):
        """Return a :class:`TimelineArrays` vectorized view for samplers.

        This is zero-copy for the per-segment columns (read-only views of
        the live buffers); only the cumulative wall-time bounds are
        computed, and those are cached between appends.
        """
        if not self._n:
            raise TimelineError("cannot vectorize an empty timeline")
        n = self._n
        if self._ends_s is None or len(self._ends_s) != n:
            self._ends_s = np.cumsum(self._duration[:n])
        durations = self._duration[:n]
        return TimelineArrays(
            starts_s=self._ends_s - durations,
            ends_s=self._ends_s,
            start_cycles=self._start_cycle[:n],
            end_cycles=self._end_cycle[:n],
            components=self._component[:n],
            cpu_power=self._cpu_power[:n],
            mem_power=self._mem_power[:n],
            instructions=self._instructions[:n],
            l2_accesses=self._l2_accesses[:n],
            l2_misses=self._l2_misses[:n],
            mem_accesses=self._mem_accesses[:n],
            clock_hz=self.clock_hz,
        )

    # -- columnar serialization ----------------------------------------

    def to_columns(self):
        """Column snapshot of the timeline for serialization.

        Returns a plain dict — clock, segment count, one trimmed *copy*
        per column buffer (exact dtypes preserved), and the tag list —
        that :meth:`from_columns` reconstructs exactly.  Copies are
        deliberate: a snapshot must not alias the live buffers, which
        keep growing (and get reallocated) as the VM appends.
        """
        n = self._n
        return {
            "schema": COLUMNS_SCHEMA,
            "clock_hz": self.clock_hz,
            "n": n,
            "columns": {
                name: getattr(self, name)[:n].copy()
                for name in self._columns()
            },
            "tags": list(self._tags),
        }

    @classmethod
    def from_columns(cls, data):
        """Rebuild a timeline from a :meth:`to_columns` snapshot.

        The round-trip is exact: every column comes back with the same
        dtype and bit-identical values, so derived quantities
        (``duration_s``, ``to_arrays()`` cumulative bounds, energies)
        are bit-identical too.  Dtype or length mismatches raise
        :class:`~repro.errors.TimelineError` instead of being silently
        coerced — a snapshot that drifted is not a timeline.
        """
        if not isinstance(data, dict):
            raise TimelineError(
                f"timeline snapshot must be a dict, got "
                f"{type(data).__name__}"
            )
        schema = data.get("schema")
        if schema != COLUMNS_SCHEMA:
            raise TimelineError(
                f"unknown timeline snapshot schema {schema!r} "
                f"(expected {COLUMNS_SCHEMA!r})"
            )
        timeline = cls(data["clock_hz"])
        n = int(data["n"])
        if n < 0:
            raise TimelineError(f"negative segment count {n}")
        columns = data.get("columns", {})
        missing = set(timeline._columns()) - set(columns)
        if missing:
            raise TimelineError(
                f"snapshot is missing columns {sorted(missing)}"
            )
        # Keep the initial capacity floor so an empty or tiny restored
        # timeline can still grow by doubling (capacity zero cannot).
        timeline._alloc(max(n, _INITIAL_CAPACITY))
        for name in timeline._columns():
            buf = getattr(timeline, name)
            col = np.asarray(columns[name])
            if col.dtype != buf.dtype:
                raise TimelineError(
                    f"column {name} has dtype {col.dtype}, "
                    f"expected {buf.dtype}"
                )
            if col.shape != (n,):
                raise TimelineError(
                    f"column {name} has shape {col.shape}, "
                    f"expected ({n},)"
                )
            buf[:n] = col
        tags = list(data.get("tags", ()))
        if len(tags) != n:
            raise TimelineError(
                f"snapshot has {len(tags)} tags for {n} segments"
            )
        timeline._n = n
        timeline._tags = tags
        return timeline

    def validate(self):
        """Re-check all invariants over the whole timeline (for tests)."""
        n = self._n
        if n:
            starts = self._start_cycle[:n]
            ends = self._end_cycle[:n]
            if n > 1 and (starts[1:] != ends[:-1]).any():
                bad = int(np.flatnonzero(starts[1:] != ends[:-1])[0])
                raise TimelineError(
                    f"gap or overlap between cycle {int(ends[bad])} and "
                    f"{int(starts[bad + 1])}"
                )
            if (ends <= starts).any():
                raise TimelineError("zero or negative length segment stored")
            if (self._duration[:n] <= 0).any():
                raise TimelineError("segment has non-positive wall time")
            cumulative = float(self.to_arrays().ends_s[-1])
            if not math.isclose(self.duration_s, cumulative,
                                rel_tol=1e-9, abs_tol=1e-12):
                raise TimelineError(
                    f"duration_s ({self.duration_s!r}) disagrees with the "
                    f"cumulative segment sum ({cumulative!r})"
                )
            if len(self._tags) != n:
                raise TimelineError("tag column out of sync")
        return True
