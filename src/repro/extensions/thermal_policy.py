"""Thermal-aware garbage-collection scheduling (Section VI-C idea).

"By triggering garbage collection at points when the temperature of the
processor has exceeded a safety threshold level, the processor executes
a component with less power requirements, potentially giving it time to
cool down to a safe level."

:class:`ThermalAwareVM` implements that policy: before each execution
slice it checks the die temperature, and above the *policy* threshold
(set safely below the hardware's 99 C emergency trip point) it forces a
collection immediately instead of waiting for the allocator to run out
of space.  A forced collection both (a) runs the low-power component
for a while and (b) front-loads work the VM would do anyway, so the
cost is mostly the extra collections' work on a less-full heap.

The policy keeps simple statistics so experiments can report how often
it fired and what it bought (see
``benchmarks/test_ext_thermal_policy.py``).
"""

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.jvm.vm import JikesRVM


@dataclass
class ThermalPolicyStats:
    """Bookkeeping for the thermal-GC policy."""

    checks: int = 0
    triggers: int = 0
    trigger_temps_c: list = field(default_factory=list)


class ThermalAwareVM(JikesRVM):
    """Jikes RVM that schedules GC as a cooling action.

    ``policy_threshold_c`` should sit below the hardware trip point:
    the idea is to spend low-power GC time *before* the emergency
    response would halve the duty cycle.
    """

    def __init__(self, platform, policy_threshold_c=95.0,
                 min_garbage_bytes=1 << 20, **kwargs):
        super().__init__(platform, **kwargs)
        if policy_threshold_c >= platform.thermal.spec.trip_c:
            raise ConfigurationError(
                "the policy threshold must sit below the hardware "
                "trip point to be of any use"
            )
        self.policy_threshold_c = policy_threshold_c
        self.min_garbage_bytes = min_garbage_bytes
        self.policy_stats = ThermalPolicyStats()

    def _run_slice(self, state, sl):
        self._maybe_cool(state)
        super()._run_slice(state, sl)

    def _maybe_cool(self, state):
        stats = self.policy_stats
        stats.checks += 1
        thermal = self.platform.thermal
        if thermal.temperature_c < self.policy_threshold_c:
            return
        # Only collect if there is enough garbage to make the dwell
        # worthwhile (a no-op collection would spin at higher power).
        occupied = state.collector.used_bytes()
        live = state.roots.live_bytes()
        if occupied - live < self.min_garbage_bytes:
            return
        stats.triggers += 1
        stats.trigger_temps_c.append(thermal.temperature_c)
        state.roots.expire(state.now)
        reports = state.collector.collect(state.roots, state.now)
        for report in reports:
            for act in state.gc_cost.activities(report):
                state.sched.execute(act)
