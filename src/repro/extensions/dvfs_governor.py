"""Event-driven DVFS governing (paper references [34]-[36]).

"Process Cruise Control" (Weissel & Bellosa, CASES'02 — the paper's
reference [36]) scales the XScale's clock based on counter-derived
memory-boundness: memory-bound phases lose little performance at a
lower clock (the DRAM, not the core, is the bottleneck), so the
governor trades frequency for energy precisely when it is cheap to do
so.

:class:`MemoryBoundGovernor` reproduces that policy over the simulated
platforms: it watches a sliding window of per-segment IPC and memory
intensity and picks an operating point from a discrete ladder.
:class:`GovernedScheduler` plugs it into the instrumented scheduler so
the decision happens on line, affecting every subsequent segment.

Caveat faithfully modeled: in this simulator a *memory-bound* segment's
stall cycles are core cycles, so lowering the clock stretches them in
wall time like any other cycle.  The governor's win therefore comes
from the V^2*f energy reduction being larger than the slowdown on
low-IPC phases — the energy-delay trade the papers actually measured —
rather than from hiding DRAM latency entirely.
"""

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.jvm.scheduler import InstrumentedScheduler

#: Default operating-point ladder (frequency scales).
DEFAULT_LADDER = (1.0, 0.85, 0.7, 0.55)


@dataclass
class GovernorDecision:
    """One governor actuation, kept for post-run analysis."""

    cycle: int
    ipc: float
    freq_scale: float


class MemoryBoundGovernor:
    """Pick a frequency from IPC: low IPC -> memory-bound -> slow down.

    The mapping is a simple staircase over the window-averaged IPC:
    the core runs at full speed above ``ipc_high`` and at the ladder's
    floor below ``ipc_low``, interpolating across ladder steps in
    between.
    """

    def __init__(self, ladder=DEFAULT_LADDER, ipc_low=0.45,
                 ipc_high=0.85, window=8):
        if ipc_low >= ipc_high:
            raise ConfigurationError("ipc_low must be below ipc_high")
        if sorted(ladder, reverse=True) != list(ladder):
            raise ConfigurationError(
                "ladder must be sorted fastest-first"
            )
        self.ladder = tuple(ladder)
        self.ipc_low = ipc_low
        self.ipc_high = ipc_high
        self.window = window
        self._recent = []
        self.decisions = []

    def observe(self, segment):
        """Feed one retired segment; return the chosen freq scale.

        The window average is *cycle-weighted*: a long memory-bound
        application phase must not be outvoted by a burst of short
        compiler activations (exactly the aliasing a real OS-timer
        governor avoids by sampling on time, not on events).
        """
        if segment.instructions > 0 and segment.cycles > 0:
            self._recent.append((segment.ipc, segment.cycles))
            if len(self._recent) > self.window:
                self._recent.pop(0)
        if self._recent:
            total = sum(cycles for _, cycles in self._recent)
            ipc = sum(
                ipc * cycles for ipc, cycles in self._recent
            ) / total
        else:
            ipc = self.ipc_high
        scale = self._scale_for(ipc)
        self.decisions.append(
            GovernorDecision(
                cycle=segment.end_cycle, ipc=ipc, freq_scale=scale
            )
        )
        return scale

    def _scale_for(self, ipc):
        if ipc >= self.ipc_high:
            return self.ladder[0]
        if ipc <= self.ipc_low:
            return self.ladder[-1]
        span = self.ipc_high - self.ipc_low
        position = (self.ipc_high - ipc) / span  # 0 fast .. 1 slow
        index = min(
            int(position * len(self.ladder)), len(self.ladder) - 1
        )
        return self.ladder[index]

    @property
    def residency(self):
        """Fraction of decisions spent at each operating point."""
        if not self.decisions:
            return {}
        counts = {}
        for d in self.decisions:
            counts[d.freq_scale] = counts.get(d.freq_scale, 0) + 1
        total = len(self.decisions)
        return {k: v / total for k, v in sorted(counts.items())}


class GovernedScheduler(InstrumentedScheduler):
    """Instrumented scheduler with an on-line DVFS governor.

    After every retired segment the governor picks the operating point
    for what follows — the same actuation granularity an OS-timer-driven
    governor achieves on real hardware.
    """

    def __init__(self, platform, governor, style="jikes",
                 max_chunk_s=None):
        super().__init__(platform, style=style, max_chunk_s=max_chunk_s)
        self.governor = governor

    def _append(self, seg):
        super()._append(seg)
        if seg.cycles > 0 and seg.tag != "port-write":
            scale = self.governor.observe(seg)
            if scale != self.platform.cpu.dvfs.freq_scale:
                self.platform.cpu.set_dvfs(scale)


def governed_vm(vm_class, platform, governor, **vm_kwargs):
    """Instantiate *vm_class* with *governor* installed.

    Uses the VM's scheduler-construction hook, so the governor sees
    every retired segment of every run the returned VM performs.
    """

    class _GovernedVM(vm_class):
        def _make_scheduler(self):
            return GovernedScheduler(
                self.platform, governor, style=self.style
            )

    _GovernedVM.__name__ = f"Governed{vm_class.__name__}"
    return _GovernedVM(platform, **vm_kwargs)
