"""Extensions implementing the paper's Section VII future work.

The paper closes with three research directions, all of which this
package implements on top of the simulated stack:

* :mod:`repro.extensions.power_estimator` — runtime power estimation
  from hardware performance counters (the paper's reference [37] is the
  authors' own ISLPED'05 model for the XScale: a linear combination of
  counter-derived rates);
* :mod:`repro.extensions.dvfs_governor` — event-driven dynamic
  voltage/frequency scaling driven by memory-boundness (in the spirit
  of reference [36], "Process Cruise Control");
* :mod:`repro.extensions.thermal_policy` — a thermal-aware VM that
  schedules garbage collection as a cool-down mechanism when the die
  approaches its thermal envelope (the Section VI-C suggestion);
* :mod:`repro.extensions.heap_sizing` — adaptive heap growth driven by
  GC overhead (the research direction of the paper's reference [1]).
"""

from repro.extensions.dvfs_governor import (
    GovernedScheduler,
    MemoryBoundGovernor,
    governed_vm,
)
from repro.extensions.heap_sizing import AdaptiveHeapVM
from repro.extensions.power_estimator import (
    CounterPowerModel,
    fit_power_model,
)
from repro.extensions.thermal_policy import ThermalAwareVM

__all__ = [
    "AdaptiveHeapVM",
    "CounterPowerModel",
    "GovernedScheduler",
    "MemoryBoundGovernor",
    "ThermalAwareVM",
    "fit_power_model",
    "governed_vm",
]
