"""Extensions implementing the paper's Section VII future work.

The paper closes with three research directions, all of which this
package implements on top of the simulated stack:

* :mod:`repro.extensions.power_estimator` — runtime power estimation
  from hardware performance counters (the paper's reference [37] is the
  authors' own ISLPED'05 model for the XScale: a linear combination of
  counter-derived rates);
* :mod:`repro.extensions.dvfs_governor` — event-driven dynamic
  voltage/frequency scaling driven by memory-boundness (in the spirit
  of reference [36], "Process Cruise Control");
* :mod:`repro.extensions.thermal_policy` — a thermal-aware VM that
  schedules garbage collection as a cool-down mechanism when the die
  approaches its thermal envelope (the Section VI-C suggestion);
* :mod:`repro.extensions.heap_sizing` — adaptive heap growth driven by
  GC overhead (the research direction of the paper's reference [1]).
"""

from repro.extensions.dvfs_governor import (
    GovernedScheduler,
    MemoryBoundGovernor,
    governed_vm,
)
from repro.extensions.heap_sizing import AdaptiveHeapVM
from repro.extensions.power_estimator import (
    CounterPowerModel,
    fit_power_model,
)
from repro.extensions.thermal_policy import ThermalAwareVM
from repro.jvm.gc import JIKES_COLLECTORS
from repro.registry import register_extension, register_vm

register_extension(
    "power-estimator", fit_power_model, kind="model",
    description="counter-driven runtime power estimation (ISLPED'05)",
)
register_extension(
    "dvfs-governor", governed_vm, kind="scheduler",
    description="memory-boundness DVFS governor (Process Cruise Control)",
)
register_extension(
    "thermal-policy", ThermalAwareVM, kind="vm",
    description="GC-as-cooldown thermal-aware VM (Section VI-C)",
)
register_extension(
    "heap-sizing", AdaptiveHeapVM, kind="vm",
    description="GC-overhead-driven adaptive heap growth",
)

# The two extension VMs are full VM-registry citizens: a scenario spec
# can name them in its ``vms`` axis exactly like "jikes" or "kaffe".
register_vm(
    "thermal-aware",
    ThermalAwareVM,
    description="Jikes RVM scheduling GC as a cooling action",
    style="jikes",
    collectors=JIKES_COLLECTORS,
    default_collector=ThermalAwareVM.default_collector,
    platforms=("p6", "pxa255"),
    extension=True,
)
register_vm(
    "adaptive-heap",
    AdaptiveHeapVM,
    description="Jikes RVM with GC-overhead-driven heap growth",
    style="jikes",
    collectors=("SemiSpace", "MarkSweep"),
    default_collector="SemiSpace",
    platforms=("p6", "pxa255"),
    extension=True,
)

__all__ = [
    "AdaptiveHeapVM",
    "CounterPowerModel",
    "GovernedScheduler",
    "MemoryBoundGovernor",
    "ThermalAwareVM",
    "fit_power_model",
    "governed_vm",
]
