"""Counter-based runtime power estimation (paper reference [37]).

Contreras & Martonosi's ISLPED'05 work estimates XScale power at run
time as a linear combination of hardware-performance-counter rates.
This module reproduces that technique against the simulated platforms:

1. run a *training* workload, collect per-interval counter rates (IPC,
   memory references per cycle) alongside the measured power trace;
2. fit the linear model ``P = c0 + c1 * IPC + c2 * mem_per_kcycle``
   by least squares;
3. deploy the fitted model to predict the power of *other* workloads
   from counters alone — no sense resistors required.

The paper's Section VII lists exactly this ("dynamic processor and
memory power estimation techniques using hardware performance
counters") as the enabling mechanism for power-aware scheduling.
"""

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CounterPowerModel:
    """A fitted linear counters -> watts model."""

    c0: float            # static/idle term
    c1: float            # per-IPC term
    c2: float            # per memory-access-per-kilocycle term
    platform_name: str
    training_error_w: float

    def predict(self, ipc, mem_per_kcycle):
        """Predict power for scalar or array inputs."""
        return (
            self.c0
            + self.c1 * np.asarray(ipc, dtype=np.float64)
            + self.c2 * np.asarray(mem_per_kcycle, dtype=np.float64)
        )

    def describe(self):
        return (
            f"P[W] = {self.c0:.3f} + {self.c1:.3f}*IPC + "
            f"{self.c2:.4f}*mem/kcycle  (train MAE "
            f"{self.training_error_w * 1000:.1f} mW, "
            f"{self.platform_name})"
        )


def _segment_features(timeline, min_cycles=10_000):
    """Per-segment (ipc, mem_per_kcycle, power, weight) arrays."""
    ipc, mem_rate, power, weight = [], [], [], []
    for seg in timeline:
        if seg.cycles < min_cycles or seg.instructions == 0:
            continue
        ipc.append(seg.instructions / seg.cycles)
        mem_rate.append(1000.0 * seg.mem_accesses / seg.cycles)
        power.append(seg.cpu_power_w)
        weight.append(seg.cycles)
    if len(ipc) < 3:
        raise ConfigurationError(
            "need at least 3 usable segments to fit a power model"
        )
    return (
        np.asarray(ipc),
        np.asarray(mem_rate),
        np.asarray(power),
        np.asarray(weight, dtype=np.float64),
    )


def fit_power_model(timeline, platform_name):
    """Fit a :class:`CounterPowerModel` to a run's ground truth.

    In the paper's setting the regression target is the *measured*
    power trace; fitting against the timeline's per-segment power is
    equivalent here (the DAQ adds only noise) and keeps the example
    free of alignment bookkeeping.
    """
    ipc, mem_rate, power, weight = _segment_features(timeline)
    w = np.sqrt(weight / weight.sum())
    design = np.column_stack(
        [np.ones_like(ipc), ipc, mem_rate]
    ) * w[:, None]
    target = power * w
    coef, *_ = np.linalg.lstsq(design, target, rcond=None)
    predicted = coef[0] + coef[1] * ipc + coef[2] * mem_rate
    mae = float(
        np.average(np.abs(predicted - power), weights=weight)
    )
    return CounterPowerModel(
        c0=float(coef[0]),
        c1=float(coef[1]),
        c2=float(coef[2]),
        platform_name=platform_name,
        training_error_w=mae,
    )


def evaluate_power_model(model, timeline):
    """Mean-absolute error of *model* on another run's timeline."""
    ipc, mem_rate, power, weight = _segment_features(timeline)
    predicted = model.predict(ipc, mem_rate)
    mae = float(
        np.average(np.abs(predicted - power), weights=weight)
    )
    avg_power = float(np.average(power, weights=weight))
    return mae, mae / avg_power
