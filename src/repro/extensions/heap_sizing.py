"""Adaptive heap sizing (the paper's reference [1] direction).

Brecht et al. ("Controlling Garbage Collection and Heap Growth to
Reduce the Execution Time of Java Applications") showed that growing
the heap when collection overhead is high recovers most of a large
fixed heap's performance without committing its memory up front.

:class:`AdaptiveHeapVM` implements the classic controller: after each
slice it computes the GC share of recent execution time; above
``overhead_target`` it grows the heap by ``growth_factor`` (up to
``max_heap_mb``).  Only collectors with ``supports_growth`` (SemiSpace,
MarkSweep) participate — generational spaces would need re-carving.

The energy angle — the reason this belongs in a reproduction of *this*
paper — is Section VI-A's observation that "increasing the heap size
has considerable energy benefits since the garbage collector is invoked
less often": adaptive sizing buys those benefits only where a workload
actually needs them.
"""

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.jvm.components import Component
from repro.jvm.vm import JikesRVM
from repro.units import MB


@dataclass
class HeapSizingStats:
    """Controller bookkeeping."""

    growths: int = 0
    grown_bytes: int = 0
    decisions: list = field(default_factory=list)  # (gc_share, heap)


class AdaptiveHeapVM(JikesRVM):
    """Jikes RVM with a GC-overhead-driven heap-growth controller."""

    def __init__(self, platform, overhead_target=0.20,
                 growth_factor=0.25, max_heap_mb=256, **kwargs):
        super().__init__(platform, **kwargs)
        if not (0.0 < overhead_target < 1.0):
            raise ConfigurationError(
                "overhead_target must be in (0, 1)"
            )
        if growth_factor <= 0:
            raise ConfigurationError("growth_factor must be positive")
        if max_heap_mb * MB < self.heap_bytes:
            raise ConfigurationError(
                "max_heap_mb below the starting heap"
            )
        self.overhead_target = overhead_target
        self.growth_factor = growth_factor
        self.max_heap_bytes = int(max_heap_mb * MB)
        self.sizing_stats = HeapSizingStats()
        self._window_mark = {"gc": 0.0, "total": 0.0}

    def _make_collector(self, rng):
        collector = super()._make_collector(rng)
        if not collector.supports_growth:
            raise ConfigurationError(
                "adaptive sizing needs a growable collector "
                f"({collector.name} is not; use SemiSpace or "
                "MarkSweep)"
            )
        return collector

    def _post_slice(self, state, sl):
        super()._post_slice(state, sl)
        seconds = state.sched.timeline.component_seconds()
        gc_s = seconds.get(int(Component.GC), 0.0)
        total_s = sum(seconds.values())
        window_gc = gc_s - self._window_mark["gc"]
        window_total = total_s - self._window_mark["total"]
        if window_total < 0.2:
            return  # let the window accumulate
        self._window_mark = {"gc": gc_s, "total": total_s}
        gc_share = window_gc / window_total if window_total else 0.0
        self.sizing_stats.decisions.append(
            (gc_share, state.collector.heap_bytes)
        )
        if gc_share <= self.overhead_target:
            return
        grant = int(state.collector.heap_bytes * self.growth_factor)
        room = self.max_heap_bytes - state.collector.heap_bytes
        grant = min(grant, room)
        if grant <= 0:
            return
        state.collector.grow(grant)
        self.sizing_stats.growths += 1
        self.sizing_stats.grown_bytes += grant

    @property
    def final_heap_mb(self):
        """Heap size after the controller's growths (start + grants)."""
        return (
            self.heap_bytes + self.sizing_stats.grown_bytes
        ) / MB
