"""CI energy-regression gate: replay the example scenarios.

Re-executes every scenario under ``examples/scenarios/`` and compares
the per-cell energy/power summaries against the pinned goldens in
``benchmarks/golden/replay_golden.json``.  The engine is deterministic,
so a drift beyond the (tight) relative tolerance means the simulator's
numeric behavior changed — which is fine when intentional, but must be
an explicit, reviewed event: regenerate the goldens with ``--update``
and bump :data:`repro.campaign.cache.CACHE_VERSION` in the same PR.

The golden file also pins each scenario's spec hash, so an edit to a
spec file (which silently changes every cell) fails loudly instead of
being absorbed into "the numbers moved".

Usage::

    python scripts/check_replay.py                  # gate all scenarios
    python scripts/check_replay.py --only quickstart
    python scripts/check_replay.py --workers 4
    python scripts/check_replay.py --store /tmp/rs  # also populate a
                                                    # result store (for
                                                    # `repro replay --all`)
    python scripts/check_replay.py --update         # re-pin goldens
"""

import argparse
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

GOLDEN_SCHEMA = "repro-replay-golden-v1"
GOLDEN_PATH = REPO / "benchmarks" / "golden" / "replay_golden.json"
SCENARIO_DIR = REPO / "examples" / "scenarios"

#: The gated per-cell summary metrics (from the result payload's
#: ``totals`` section).
METRICS = ("duration_s", "cpu_energy_j", "mem_energy_j", "edp_js")

#: Default allowed relative drift per metric.  The simulator is
#: deterministic, so this is headroom for float-level platform
#: variation, not for behavior changes.
DEFAULT_TOLERANCE_REL = 0.02


def cell_label(payload):
    """Stable human-readable identity for one cell's golden row."""
    cfg = payload["config"]
    return (f"{cfg['benchmark']}|{cfg['vm']}|{cfg['platform']}|"
            f"{cfg['collector']}|{cfg['heap_mb']}MB|"
            f"seed{cfg['seed']}|x{cfg['input_scale']}")


def run_scenario(spec_path, workers):
    """Execute one scenario; returns ``(spec, result)``."""
    from repro.campaign.runner import CampaignRunner
    from repro.spec import ScenarioSpec

    spec = ScenarioSpec.from_file(spec_path).validate()
    result = CampaignRunner(workers=workers).run(spec.campaign_config())
    return spec, result


def summarize(result):
    """``{cell_label: {metric: value}}`` for every OK cell.

    OOM cells are skipped (they have no totals); a cell that *starts*
    OOMing under a changed engine therefore disappears from the
    summary and trips the missing-cell check.
    """
    cells = {}
    for cell in result.ok_cells():
        if cell.oom:
            continue
        totals = cell.payload["totals"]
        cells[cell_label(cell.payload)] = {
            metric: totals[metric] for metric in METRICS
        }
    return cells


def store_result(store_dir, spec, result):
    """Write the scenario's result document (plus its provenance
    envelope) into a result store, so CI can chain
    ``repro replay --all`` against freshly-written entries."""
    from repro.provenance import build_envelope
    from repro.serve.pool import build_result_payload, encode_result
    from repro.serve.store import ResultStore

    key = spec.spec_hash()
    data = encode_result(build_result_payload(spec, result))
    ResultStore(store_dir).put_bytes(
        key, data,
        envelope=build_envelope("result", key, spec_hash=key,
                                spec_name=spec.name or None,
                                n_cells=len(result)),
    )
    return key


def scenario_paths(only=None):
    paths = sorted(SCENARIO_DIR.glob("*.toml"))
    if only:
        paths = [p for p in paths if p.stem in only]
    return paths


def update_goldens(args):
    scenarios = {}
    for path in scenario_paths(args.only):
        print(f"  running {path.stem}...", flush=True)
        spec, result = run_scenario(path, args.workers)
        failed = result.failed_cells()
        if failed:
            print(f"FAIL: {path.stem}: {len(failed)} cells failed; "
                  "refusing to pin goldens")
            return 1
        scenarios[path.stem] = {
            "spec": str(path.relative_to(REPO)),
            "spec_hash": spec.spec_hash(),
            "cells": summarize(result),
        }
        if args.store:
            store_result(args.store, spec, result)
    golden = {
        "schema": GOLDEN_SCHEMA,
        "tolerance_rel": args.tolerance,
        "scenarios": scenarios,
    }
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(
        json.dumps(golden, indent=2, sort_keys=True) + "\n"
    )
    n_cells = sum(len(s["cells"]) for s in scenarios.values())
    print(f"pinned {len(scenarios)} scenario(s), {n_cells} cell(s) "
          f"-> {GOLDEN_PATH.relative_to(REPO)}")
    return 0


def check(args):
    try:
        golden = json.loads(GOLDEN_PATH.read_text())
    except OSError:
        print(f"FAIL: no golden file at {GOLDEN_PATH} "
              "(generate with --update)")
        return 1
    if golden.get("schema") != GOLDEN_SCHEMA:
        print(f"FAIL: unexpected golden schema "
              f"{golden.get('schema')!r} (want {GOLDEN_SCHEMA})")
        return 1
    tolerance = float(golden.get("tolerance_rel",
                                 DEFAULT_TOLERANCE_REL))
    failures = []

    def expect(ok, what):
        state = "ok" if ok else "FAIL"
        print(f"  [{state}] {what}")
        if not ok:
            failures.append(what)

    names = sorted(golden.get("scenarios", {}))
    if args.only:
        names = [n for n in names if n in args.only]
    if not names:
        print("FAIL: no scenarios selected")
        return 1
    for name in names:
        pinned = golden["scenarios"][name]
        spec_path = REPO / pinned["spec"]
        print(f"{name} ({pinned['spec']}):")
        if not spec_path.exists():
            expect(False, f"spec file exists: {pinned['spec']}")
            continue
        spec, result = run_scenario(spec_path, args.workers)
        expect(spec.spec_hash() == pinned["spec_hash"],
               f"spec hash matches pinned "
               f"{pinned['spec_hash'][:12]} (got "
               f"{spec.spec_hash()[:12]}; if the spec change is "
               "intentional, re-pin with --update)")
        failed = result.failed_cells()
        expect(not failed, f"all {len(result)} cells ran "
                           f"({len(failed)} failed)")
        cells = summarize(result)
        missing = sorted(set(pinned["cells"]) - set(cells))
        extra = sorted(set(cells) - set(pinned["cells"]))
        expect(not missing,
               f"every pinned cell replayed (missing: {missing[:3]})")
        expect(not extra,
               f"no unpinned cells appeared (extra: {extra[:3]})")
        worst = (0.0, None)  # (relative drift, "cell metric" label)
        drifted = []
        for label in sorted(set(pinned["cells"]) & set(cells)):
            for metric in METRICS:
                want = pinned["cells"][label][metric]
                got = cells[label][metric]
                scale = max(abs(want), 1e-12)
                drift = abs(got - want) / scale
                if drift > worst[0]:
                    worst = (drift, f"{label} {metric}")
                if drift > tolerance:
                    drifted.append(
                        f"{name}: {label}: {metric} drifted "
                        f"{100 * drift:.2f}% (golden {want:.6g}, "
                        f"replayed {got:.6g}, tolerance "
                        f"{100 * tolerance:.1f}%)"
                    )
        for line in drifted[:args.max_report]:
            expect(False, line)
        if len(drifted) > args.max_report:
            expect(False, f"{name}: ... and "
                          f"{len(drifted) - args.max_report} more "
                          "drifted metric(s)")
        if not drifted:
            expect(True,
                   f"{len(cells)} cells x {len(METRICS)} metrics "
                   f"within {100 * tolerance:.1f}% (worst "
                   f"{100 * worst[0]:.3f}%"
                   + (f" at {worst[1]}" if worst[1] else "") + ")")
        if args.store:
            key = store_result(args.store, spec, result)
            print(f"  [info] stored result {key[:12]} -> {args.store}")
    if failures:
        print(f"FAIL: {len(failures)} replay check(s) failed")
        return 1
    print(f"OK: {len(names)} scenario(s) replay within tolerance")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0]
    )
    parser.add_argument("--only", nargs="+", default=None,
                        metavar="NAME",
                        help="scenario stems to gate (default: all)")
    parser.add_argument("--workers", type=int, default=1,
                        help="campaign worker processes per scenario")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="also write each result (with its "
                             "provenance envelope) into this result "
                             "store")
    parser.add_argument("--update", action="store_true",
                        help="re-pin the golden file from the current "
                             "engine instead of gating")
    parser.add_argument("--tolerance", type=float,
                        default=DEFAULT_TOLERANCE_REL,
                        help="relative tolerance written on --update")
    parser.add_argument("--max-report", type=int, default=10,
                        help="drifted metrics to print per scenario")
    args = parser.parse_args(argv)
    if args.update:
        return update_goldens(args)
    return check(args)


if __name__ == "__main__":
    raise SystemExit(main())
