"""Calibration dashboard (development tooling).

Prints the paper's headline quantities for quick iteration while tuning
model constants.  The canonical regeneration targets with assertions
live under ``benchmarks/``; the canonical paper-vs-measured record is
``EXPERIMENTS.md``.

Run targeted sections with::

    python scripts/calibrate.py fig6      # energy decomposition
    python scripts/calibrate.py power     # Section VI-C power/IPC table
    python scripts/calibrate.py kaffe     # Figures 9-11
    python scripts/calibrate.py edp       # Section VI-B EDP claims
"""

import sys
import time

from repro import run_experiment
from repro.jvm.components import Component
from repro.workloads import all_benchmarks


def fig6():
    print("== Fig 6: Jikes + SemiSpace energy decomposition ==")
    print(f"{'bench':16s} {'heap':>5s} {'GC%':>6s} {'CL%':>6s} "
          f"{'Base%':>6s} {'Opt%':>6s} {'JVM%':>6s} {'time':>7s} "
          f"{'#gc':>5s} {'mem%':>6s}")
    for suite, heaps in (("SpecJVM98", (32, 128)), ("DaCapo", (48, 128)),
                         ("JGF", (32, 128))):
        gc_sum = {h: 0.0 for h in heaps}
        n = 0
        for spec in all_benchmarks(suite):
            n += 1
            for h in heaps:
                r = run_experiment(spec.name, collector="SemiSpace",
                                   heap_mb=h)
                b = r.breakdown
                gc_sum[h] += b.fraction(Component.GC)
                print(f"{spec.name:16s} {h:5d} "
                      f"{100*b.fraction(Component.GC):6.1f} "
                      f"{100*b.fraction(Component.CL):6.1f} "
                      f"{100*b.fraction(Component.BASE):6.1f} "
                      f"{100*b.fraction(Component.OPT):6.1f} "
                      f"{100*b.jvm_fraction():6.1f} "
                      f"{r.duration_s:7.2f} "
                      f"{r.run.gc_stats.collections:5d} "
                      f"{100*b.mem_to_cpu_ratio():6.1f}")
        for h in heaps:
            print(f"  {suite} avg GC% @ {h} MB: {100*gc_sum[h]/n:.1f}")


def power():
    print("== Sec VI-C: per-component power/IPC (Jikes, GenCopy, 64MB) ==")
    for name in ("_213_javac", "_209_db", "_201_compress", "_227_mtrt"):
        r = run_experiment(name, collector="GenCopy", heap_mb=64)
        profs = r.profiles()
        print(name)
        for comp, p in sorted(profs.items(), key=lambda kv: kv[0]):
            print(f"  {comp.short_name:10s} avgP {p.avg_power_w:6.2f} W "
                  f"peak {p.peak_power_w:6.2f} W ipc {p.ipc:5.2f} "
                  f"l2miss {100*p.l2_miss_rate:5.1f}% "
                  f"E% {100*p.energy_fraction:5.1f}")
    print("-- collector avg GC power across benchmarks (targets: "
          "GenCopy 12.8, SemiSpace 12.3, GenMS 12.7, MarkSweep 11.7) --")
    for gc in ("GenCopy", "SemiSpace", "GenMS", "MarkSweep"):
        tot, n = 0.0, 0
        for name in ("_202_jess", "_213_javac", "_227_mtrt", "_209_db"):
            r = run_experiment(name, collector=gc, heap_mb=64)
            avg = r.power.component_avg_power_w().get(int(Component.GC))
            if avg:
                tot += avg
                n += 1
        print(f"  {gc:10s} {tot/max(n,1):6.2f} W")


def kaffe():
    print("== Fig 9: Kaffe on P6 ==")
    for name in ("_201_compress", "_202_jess", "_209_db", "_213_javac",
                 "_228_jack", "antlr", "euler"):
        r = run_experiment(name, vm="kaffe", heap_mb=64)
        b = r.breakdown
        print(f"  {name:16s} GC {100*b.fraction(Component.GC):5.1f}% "
              f"CL {100*b.fraction(Component.CL):5.1f}% "
              f"JIT {100*b.fraction(Component.JIT):5.1f}% "
              f"time {r.duration_s:7.2f}s")
    print("== Fig 11: Kaffe on PXA255 (s10, 16MB) ==")
    for name in ("_201_compress", "_202_jess", "_209_db", "_213_javac",
                 "_228_jack"):
        r = run_experiment(name, vm="kaffe", platform="pxa255",
                           heap_mb=16, input_scale=0.1)
        b = r.breakdown
        avg = r.power.component_avg_power_w()
        print(f"  {name:16s} GC {100*b.fraction(Component.GC):5.1f}% "
              f"CL {100*b.fraction(Component.CL):5.1f}% "
              f"JIT {100*b.fraction(Component.JIT):5.1f}% "
              f"time {r.duration_s:7.1f}s | P(mW): "
              f"app {1000*avg.get(0,0):4.0f} gc {1000*avg.get(1,0):4.0f} "
              f"cl {1000*avg.get(2,0):4.0f} jit {1000*avg.get(5,0):4.0f}")


def edp_claims():
    print("== Sec VI-B EDP claims ==")
    for name in ("_213_javac", "_227_mtrt", "euler"):
        out = {}
        for gc in ("SemiSpace", "GenCopy", "GenMS"):
            for h in (32, 48, 128):
                r = run_experiment(name, collector=gc, heap_mb=h)
                out[(gc, h)] = r.edp
        ss_drop = 1 - out[("SemiSpace", 48)] / out[("SemiSpace", 32)]
        gen_drop = 1 - out[("GenCopy", 48)] / out[("GenCopy", 32)]
        genms_vs_ss = 1 - out[("GenMS", 32)] / out[("SemiSpace", 32)]
        print(f"  {name:12s} SS 32->48 drop {100*ss_drop:5.1f}% "
              "(paper: javac 56/mtrt 50/euler 27) | GenCopy drop "
              f"{100*gen_drop:5.1f}% (paper: 20/2/3) | GenMS vs SS @32 "
              f"{100*genms_vs_ss:5.1f}% (paper javac ~70)")
    # _209_db crossover at 128 MB.
    db_ss = run_experiment("_209_db", collector="SemiSpace", heap_mb=128)
    db_gc = run_experiment("_209_db", collector="GenCopy", heap_mb=128)
    print(f"  _209_db @128: SemiSpace EDP {db_ss.edp:.1f} vs GenCopy "
          f"{db_gc.edp:.1f} -> SS better by "
          f"{100*(1-db_ss.edp/db_gc.edp):.1f}% (paper ~5%)")


if __name__ == "__main__":
    which = sys.argv[1] if len(sys.argv) > 1 else "all"
    t0 = time.time()
    if which in ("fig6", "all"):
        fig6()
    if which in ("power", "all"):
        power()
    if which in ("kaffe", "all"):
        kaffe()
    if which in ("edp", "all"):
        edp_claims()
    print(f"[{time.time()-t0:.1f}s]")
