"""CI perf gate for the checked-in benchmark artifacts.

Dispatches on the result file's ``schema`` field:

* ``BENCH_engine.json`` (``benchmarks/perf/bench_engine.py``) — the
  batched engine's segments/sec is compared against the ``gate``
  section of ``benchmarks/perf/baseline.json``; exits non-zero when
  the measured rate falls more than the allowed fraction (default
  30 %) below the baseline.  When the document carries a ``sweep``
  section, its amortized fused/split speedup is additionally gated
  against the baseline's ``sweep_amortized_speedup_min`` — a
  same-machine ratio, so it is robust on shared runners.
* ``BENCH_serve.json`` (``repro-bench-serve-v1``, from
  ``benchmarks/perf/bench_serve.py``) — validates the serving layer's
  correctness invariants, which hold at any load: byte-identical
  serving, every distinct spec executed in every mode, exactly-once
  execution across instances, and sane latency/dedup figures.
  Throughput itself is not gated — shared CI runners make jobs/sec
  too noisy for a hard floor.

Usage::

    python scripts/check_perf.py BENCH_engine.json
    python scripts/check_perf.py BENCH_engine.json --max-regression 0.5
    python scripts/check_perf.py BENCH_serve.json
"""

import argparse
import json
import sys
from pathlib import Path

BASELINE_PATH = (
    Path(__file__).resolve().parent.parent
    / "benchmarks" / "perf" / "baseline.json"
)


def check_serve(results):
    """Validate a ``repro-bench-serve-v1`` document; returns exit code."""
    failures = []

    def expect(ok, what):
        state = "ok" if ok else "FAIL"
        print(f"  [{state}] {what}")
        if not ok:
            failures.append(what)

    n_specs = results["config"]["specs"]
    modes = results.get("modes", {})
    expect(len(modes) >= 1, f"at least one worker mode stormed "
                            f"(got {sorted(modes)})")
    for mode, m in sorted(modes.items()):
        lat = m["submit_latency_s"]
        expect(m["executed"] == n_specs,
               f"{mode}: executed == specs "
               f"({m['executed']} == {n_specs})")
        expect(m["jobs_per_sec"] > 0,
               f"{mode}: jobs_per_sec > 0 ({m['jobs_per_sec']})")
        expect(m["submits"] >= m["executed"],
               f"{mode}: submits >= executed "
               f"({m['submits']} >= {m['executed']})")
        expect(lat["p99"] >= lat["p50"] >= 0,
               f"{mode}: p99 >= p50 >= 0 "
               f"({lat['p99']:.4f} >= {lat['p50']:.4f})")
        expect(0.0 <= m["dedup_rate"] <= 1.0,
               f"{mode}: dedup_rate in [0, 1] ({m['dedup_rate']})")
        if m["submits"] > m["executed"]:
            expect(m["dedup_rate"] > 0,
                   f"{mode}: duplicate submits were deduplicated "
                   f"(dedup_rate {m['dedup_rate']})")
    expect(results.get("byte_identical") is True,
           "served bytes identical to a direct in-process run")
    overhead = results.get("tracing_overhead")
    if overhead is not None:
        expect(overhead["traced_byte_identical"] is True,
               "tracing on: result bytes still identical to a "
               "direct run")
        expect(overhead["traced"]["executed"] == n_specs,
               f"tracing on: executed == specs "
               f"({overhead['traced']['executed']} == {n_specs})")
        expect(overhead["spool_files"] >= n_specs,
               f"tracing on: one spool file per executed job "
               f"({overhead['spool_files']} >= {n_specs})")
        # The tracing-off storm is the PR 2 hot path; it must not pay
        # for the feature.  The bound is deliberately loose (shared CI
        # runners) — it catches "tracing-off got slow", not noise.
        base = overhead["untraced"]["jobs_per_sec"]
        traced_rate = overhead["traced"]["jobs_per_sec"]
        expect(base > 0 and traced_rate > 0,
               f"tracing storms made progress "
               f"({base} / {traced_rate} jobs/s)")
        if traced_rate > 0:
            ratio = base / traced_rate
            expect(ratio > 0.5,
                   f"tracing-off jobs/sec not regressed vs traced "
                   f"(untraced/traced {ratio:.2f}x > 0.5x)")
        print(f"  [info] tracing overhead "
              f"{100 * overhead['overhead_fraction']:.1f}% "
              f"(untraced {base} vs traced {traced_rate} jobs/s, "
              "informational)")
    fleet = results.get("multi_instance")
    if fleet is not None:
        expect(fleet["exactly_once"] is True,
               f"two instances, one store: executed_total "
               f"{fleet['executed_total']} == {fleet['specs']} specs")
    if "thread" in modes and "process" in modes:
        speedup = results.get("speedup_process_vs_thread", 0.0)
        isolation = results.get("p99_isolation_thread_vs_process", 0.0)
        cpus = results["config"].get("cpu_count")
        print(f"  [info] process vs thread: {speedup}x jobs/s on "
              f"{cpus} cpu(s), {isolation}x lower p99 submit latency "
              "(informational, not gated)")
    if failures:
        print(f"FAIL: {len(failures)} serve invariant(s) violated")
        return 1
    print("OK: serving invariants hold")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("results",
                        help="BENCH_engine.json / BENCH_serve.json")
    parser.add_argument("--baseline", default=str(BASELINE_PATH))
    parser.add_argument(
        "--max-regression", type=float, default=None,
        help="allowed fractional drop vs. the gate baseline "
             "(default: the baseline file's own max_regression; "
             "engine schema only)",
    )
    args = parser.parse_args(argv)

    results = json.loads(Path(args.results).read_text())
    if results.get("schema") == "repro-bench-serve-v1":
        return check_serve(results)
    baseline = json.loads(Path(args.baseline).read_text())
    gate = baseline["gate"]
    allowed = (args.max_regression if args.max_regression is not None
               else gate["max_regression"])

    measured = results["microbench"]["batched"]["segments_per_sec"]
    reference = gate["segments_per_sec"]
    floor = reference * (1.0 - allowed)
    ratio = measured / reference

    print(f"segments/sec: measured {measured:,.0f}, "
          f"gate {reference:,.0f}, floor {floor:,.0f} "
          f"({ratio:.2f}x of gate)")
    if measured < floor:
        print(f"FAIL: regression exceeds {allowed:.0%} "
              f"(measured {1.0 - ratio:.0%} below the gate baseline)")
        return 1

    sweep = results.get("sweep")
    min_speedup = gate.get("sweep_amortized_speedup_min")
    if sweep is not None and min_speedup is not None:
        speedup = sweep["amortized_speedup"]
        print(f"sweep amortized speedup: {speedup}x over "
              f"{len(sweep['periods_us'])} DAQ periods "
              f"(floor {min_speedup}x)")
        if speedup < min_speedup:
            print(f"FAIL: split pipeline amortization fell below "
                  f"{min_speedup}x — the simulate phase is being "
                  "re-paid per measurement point")
            return 1

    print("OK: within the allowed regression budget")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
