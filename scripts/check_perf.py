"""CI perf gate: fail when the engine's segments/sec regresses.

Reads a ``BENCH_engine.json`` produced by
``benchmarks/perf/bench_engine.py`` and compares the batched engine's
segments/sec against the ``gate`` section of the checked-in
``benchmarks/perf/baseline.json``.  Exits non-zero when the measured
rate falls more than the allowed fraction (default 30 %) below the
baseline.

Usage::

    python scripts/check_perf.py BENCH_engine.json
    python scripts/check_perf.py BENCH_engine.json --max-regression 0.5
"""

import argparse
import json
import sys
from pathlib import Path

BASELINE_PATH = (
    Path(__file__).resolve().parent.parent
    / "benchmarks" / "perf" / "baseline.json"
)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("results", help="BENCH_engine.json to check")
    parser.add_argument("--baseline", default=str(BASELINE_PATH))
    parser.add_argument(
        "--max-regression", type=float, default=None,
        help="allowed fractional drop vs. the gate baseline "
             "(default: the baseline file's own max_regression)",
    )
    args = parser.parse_args(argv)

    results = json.loads(Path(args.results).read_text())
    baseline = json.loads(Path(args.baseline).read_text())
    gate = baseline["gate"]
    allowed = (args.max_regression if args.max_regression is not None
               else gate["max_regression"])

    measured = results["microbench"]["batched"]["segments_per_sec"]
    reference = gate["segments_per_sec"]
    floor = reference * (1.0 - allowed)
    ratio = measured / reference

    print(f"segments/sec: measured {measured:,.0f}, "
          f"gate {reference:,.0f}, floor {floor:,.0f} "
          f"({ratio:.2f}x of gate)")
    if measured < floor:
        print(f"FAIL: regression exceeds {allowed:.0%} "
              f"(measured {1.0 - ratio:.0%} below the gate baseline)")
        return 1
    print("OK: within the allowed regression budget")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
