"""Ablation: cohort granularity sensitivity (a methodology check).

DESIGN.md's central tractability decision is modeling allocation in
~16 KiB cohorts.  If the headline results depended on that knob, the
reproduction would be suspect; this ablation reruns a GC-bound
configuration at 8/16/32/64 KiB cohorts and checks that the measured
GC energy share and run time move only marginally.
"""

from dataclasses import replace


from benchmarks.common import emit
from benchmarks.conftest import once
from repro.hardware.platform import make_platform
from repro.jvm.vm import JikesRVM
from repro.measurement.daq import DAQ
from repro.core.decomposition import decompose
from repro.workloads import get_benchmark
from repro.units import KB

COHORTS_KB = (8, 16, 32, 64)


def run_at(cohort_kb):
    import numpy as np

    spec = replace(get_benchmark("_213_javac"),
                   cohort_bytes=cohort_kb * KB)
    platform = make_platform("p6")
    vm = JikesRVM(platform, collector="SemiSpace", heap_mb=32,
                  seed=42)
    run = vm.run(spec, input_scale=0.5)
    trace = DAQ(platform, np.random.default_rng(5)).acquire(
        run.timeline
    )
    breakdown = decompose(trace, "jikes")
    from repro.jvm.components import Component

    return {
        "cohort_kb": cohort_kb,
        "duration_s": run.duration_s,
        "gc_frac": breakdown.fraction(Component.GC),
        "collections": run.gc_stats.collections,
    }


def build():
    return [run_at(kb) for kb in COHORTS_KB]


def test_ablation_granularity(benchmark):
    rows = once(benchmark, build)

    lines = [
        "Ablation: cohort granularity (javac, SemiSpace, 32 MB, "
        "half input)",
        "",
        f"{'cohort':>8s} {'time s':>8s} {'GC %':>6s} "
        f"{'collections':>12s}",
        "-" * 40,
    ]
    for r in rows:
        lines.append(
            f"{r['cohort_kb']:6d}KB {r['duration_s']:8.2f} "
            f"{100 * r['gc_frac']:6.1f} {r['collections']:12d}"
        )
    lines.append("")
    lines.append(
        "headline quantities are stable across an 8x granularity "
        "range: the cohort approximation does not drive the results"
    )
    emit("ablation_granularity", "\n".join(lines))

    gc_fracs = [r["gc_frac"] for r in rows]
    times = [r["duration_s"] for r in rows]
    # GC share varies by < 6 percentage points across the whole range.
    assert max(gc_fracs) - min(gc_fracs) < 0.06
    # Run time varies by < 12 %.
    assert (max(times) - min(times)) / max(times) < 0.12
