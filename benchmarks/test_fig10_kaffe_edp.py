"""Figure 10: Kaffe EDP vs heap size on the Pentium M.

Paper: "EDP changes little when increasing the heap size" — the GC is
such a small share of Kaffe's runtime that larger heaps barely help.
"""

import statistics


from benchmarks.common import ALL_BENCHMARKS, JIKES_HEAPS, cell, emit
from benchmarks.conftest import once


def build(cache):
    wanted = {
        (name, heap): cell(name, vm="kaffe", heap_mb=heap)
        for name in ALL_BENCHMARKS
        for heap in JIKES_HEAPS
    }
    by_config = cache.get_many(wanted.values())
    return {key: by_config[cfg] for key, cfg in wanted.items()}


def test_fig10_kaffe_edp(benchmark, cache):
    grid = once(benchmark, lambda: build(cache))

    lines = [
        "Figure 10: Kaffe EDP (joule-seconds) vs heap size on P6",
        "",
        f"{'benchmark':16s}" + "".join(f"{h:>9d}" for h in JIKES_HEAPS),
        "-" * (16 + 9 * len(JIKES_HEAPS)),
    ]
    spreads = {}
    for name in ALL_BENCHMARKS:
        series = [grid[(name, h)].edp for h in JIKES_HEAPS]
        spreads[name] = (max(series) - min(series)) / max(series)
        lines.append(
            f"{name:16s}" + "".join(f"{v:9.0f}" for v in series)
        )
    lines.append("")
    lines.append(
        "relative spread (max-min)/max per benchmark: "
        + ", ".join(f"{n}={s:.2f}" for n, s in spreads.items())
    )
    lines.append("paper: nearly constant EDP across heap sizes")
    emit("fig10_kaffe_edp", "\n".join(lines))

    # Flatness: median spread well under the Jikes equivalents (which
    # routinely halve or quarter EDP when the heap grows).
    assert statistics.median(spreads.values()) < 0.35
    flat = sum(1 for s in spreads.values() if s < 0.45)
    assert flat >= 12
