"""Figure 11: Kaffe on the Intel XScale PXA255 (SpecJVM98 -s10).

Paper: the class loader becomes the largest JVM energy consumer (18 %
average over the five benchmarks); GC and JIT average about 5 % each.
The GC is the most power-hungry component (~270 mW, ~7 % above the
application); the class loader draws the least power.
"""


from benchmarks.common import PXA_HEAPS, emit, pct
from benchmarks.conftest import once
from repro.jvm.components import Component
from repro.workloads.specjvm98 import (
    PXA255_BENCHMARKS,
    S10_INPUT_SCALE,
)

HEAP = 16


def build(cache):
    records = {}
    for name in PXA255_BENCHMARKS:
        records[name] = cache.get(
            name, vm="kaffe", platform="pxa255", heap_mb=HEAP,
            input_scale=S10_INPUT_SCALE,
        )
    # Heap sweep for one benchmark to mirror the reduced ladder.
    sweep = {
        heap: cache.get(
            "_213_javac", vm="kaffe", platform="pxa255",
            heap_mb=heap, input_scale=S10_INPUT_SCALE,
        )
        for heap in PXA_HEAPS
    }
    return records, sweep


def test_fig11_kaffe_pxa255(benchmark, cache):
    records, sweep = once(benchmark, lambda: build(cache))

    lines = [
        f"Figure 11: Kaffe on the PXA255 (-s10, {HEAP} MB heap)",
        "",
        f"{'benchmark':16s} {'GC%':>6s} {'CL%':>6s} {'JIT%':>6s} "
        f"{'P.app mW':>9s} {'P.gc mW':>8s} {'P.cl mW':>8s}",
        "-" * 60,
    ]
    cl_fracs, gc_fracs, jit_fracs = [], [], []
    for name, rec in records.items():
        cl_fracs.append(rec.frac(Component.CL))
        gc_fracs.append(rec.frac(Component.GC))
        jit_fracs.append(rec.frac(Component.JIT))
        lines.append(
            f"{name:16s} {pct(rec.frac(Component.GC))} "
            f"{pct(rec.frac(Component.CL))} "
            f"{pct(rec.frac(Component.JIT))} "
            f"{1000 * rec.avg_power.get(Component.APP, 0):9.0f} "
            f"{1000 * rec.avg_power.get(Component.GC, 0):8.0f} "
            f"{1000 * rec.avg_power.get(Component.CL, 0):8.0f}"
        )
    n = len(records)
    lines.append("")
    lines.append(
        f"averages: CL {pct(sum(cl_fracs) / n)}% (paper 18%), GC "
        f"{pct(sum(gc_fracs) / n)}% (paper 5%), JIT "
        f"{pct(sum(jit_fracs) / n)}% (paper 5%)"
    )
    lines.append("")
    lines.append("javac EDP vs heap (reduced ladder): " + ", ".join(
        f"{h}MB={sweep[h].edp:.1f}" for h in PXA_HEAPS
    ))
    emit("fig11_kaffe_pxa255", "\n".join(lines))

    # CL is the dominant JVM component on the embedded platform.
    assert sum(cl_fracs) / n > 0.10
    assert sum(cl_fracs) > sum(gc_fracs)
    assert sum(cl_fracs) > sum(jit_fracs)
    assert 0.01 < sum(gc_fracs) / n < 0.10
    assert 0.01 < sum(jit_fracs) / n < 0.10

    # The GC draws the most power; the class loader the least.
    for rec in records.values():
        gc_p = rec.avg_power[Component.GC]
        cl_p = rec.avg_power[Component.CL]
        app_p = rec.avg_power[Component.APP]
        assert gc_p > app_p
        assert cl_p < app_p
        assert 0.2 < gc_p < 0.35  # ~270 mW in the paper
