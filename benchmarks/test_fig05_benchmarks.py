"""Figure 5: the benchmark table (suite, name, description)."""

from benchmarks.common import emit
from benchmarks.conftest import once
from repro.core.report import render_table
from repro.workloads import all_benchmarks


def build_table():
    rows = [
        [spec.suite, spec.name, spec.description]
        for spec in all_benchmarks()
    ]
    return render_table(
        ["Suite", "Benchmark", "Description"], rows,
        title="Figure 5: benchmark selection",
    )


def test_fig05_benchmark_table(benchmark):
    text = once(benchmark, build_table)
    emit("fig05_benchmarks", text)
    assert "_222_mpegaudio" in text
    assert "DaCapo" in text
    assert text.count("\n") >= 17  # 16 benchmarks + header rows
