"""Section VI-C: power/utilization correlation claims.

Paper numbers checked for shape:

* average GC power by collector: GenCopy 12.8 W, SemiSpace 12.3 W,
  GenMS 12.7 W, MarkSweep 11.7 W — non-generational collectors draw
  less power on average (more stall time), but run longer;
* GC L2 miss rate ~54-56 % vs class loader 12-21 %;
* application IPC ~0.8, GC IPC ~0.55;
* class loader / compilers draw more power than the GC but less than
  the application.
"""

import pytest

from benchmarks.common import emit
from benchmarks.conftest import once
from repro.jvm.components import Component

BENCHES = ("_202_jess", "_209_db", "_213_javac", "_227_mtrt")
COLLECTORS = ("GenCopy", "SemiSpace", "GenMS", "MarkSweep")
PAPER_GC_POWER = {
    "GenCopy": 12.8, "SemiSpace": 12.3, "GenMS": 12.7,
    "MarkSweep": 11.7,
}


def build(cache):
    by_collector = {}
    for collector in COLLECTORS:
        recs = [
            cache.get(name, collector=collector, heap_mb=64)
            for name in BENCHES
        ]
        gc_p = [r.avg_power[Component.GC] for r in recs
                if Component.GC in r.avg_power]
        by_collector[collector] = {
            "gc_power": sum(gc_p) / len(gc_p),
            "gc_seconds_proxy": sum(r.duration_s for r in recs),
        }
    # Microarchitectural table from the GenCopy runs.
    micro = {}
    for name in BENCHES:
        rec = cache.get(name, collector="GenCopy", heap_mb=64)
        micro[name] = rec
    return by_collector, micro


def test_sec6c_power_claims(benchmark, cache):
    by_collector, micro = once(benchmark, lambda: build(cache))

    lines = [
        "Section VI-C: power and utilization",
        "",
        "average GC power by collector (paper values in parens):",
    ]
    for collector in COLLECTORS:
        lines.append(
            f"  {collector:10s} "
            f"{by_collector[collector]['gc_power']:6.2f} W "
            f"({PAPER_GC_POWER[collector]:.1f} W)"
        )
    lines += [
        "",
        "per-component microarchitecture (Jikes + GenCopy @ 64 MB):",
        f"{'benchmark':14s} {'appIPC':>7s} {'gcIPC':>7s} "
        f"{'appL2%':>7s} {'gcL2%':>7s} {'clL2%':>7s}",
        "-" * 52,
    ]
    for name, rec in micro.items():
        lines.append(
            f"{name:14s} {rec.ipc.get(Component.APP, 0):7.2f} "
            f"{rec.ipc.get(Component.GC, 0):7.2f} "
            f"{100 * rec.l2_miss.get(Component.APP, 0):7.1f} "
            f"{100 * rec.l2_miss.get(Component.GC, 0):7.1f} "
            f"{100 * rec.l2_miss.get(Component.CL, 0):7.1f}"
        )
    lines.append("")
    lines.append(
        "paper: app IPC ~0.8 / L2 miss ~11%; GC IPC ~0.55 / L2 miss "
        "54-56%; CL L2 miss 12-21%"
    )
    emit("sec6c_power_claims", "\n".join(lines))

    powers = {c: by_collector[c]["gc_power"] for c in COLLECTORS}
    # Within a watt of every paper value.
    for collector, value in powers.items():
        assert value == pytest.approx(PAPER_GC_POWER[collector],
                                      abs=1.0), collector
    # MarkSweep is the least power-hungry collector; generational
    # collectors draw more than their non-generational counterparts.
    assert powers["MarkSweep"] == min(powers.values())
    assert powers["GenCopy"] > powers["SemiSpace"]
    assert powers["GenMS"] > powers["MarkSweep"]

    # Microarchitecture: averaged over the GC-heavy benchmarks.
    app_ipc = sum(r.ipc[Component.APP] for r in micro.values()) / 4
    gc_ipc = sum(r.ipc[Component.GC] for r in micro.values()) / 4
    gc_miss = sum(r.l2_miss[Component.GC] for r in micro.values()) / 4
    assert 0.6 < app_ipc < 1.0
    assert 0.4 < gc_ipc < 0.7
    assert gc_ipc < app_ipc
    assert 0.40 < gc_miss < 0.70
