"""Extension: counter-based runtime power estimation (Section VII,
reference [37]).

Fits the linear counters->power model on one benchmark and evaluates it
across others and across collectors — the generalization a deployable
runtime estimator needs.
"""


from benchmarks.common import emit
from benchmarks.conftest import once
from repro.extensions.power_estimator import (
    evaluate_power_model,
    fit_power_model,
)
from repro.hardware.platform import make_platform
from repro.jvm.vm import JikesRVM
from repro.workloads import get_benchmark

TRAIN = "_202_jess"
EVAL = ("_201_compress", "_209_db", "_213_javac", "euler")


def run(benchmark, collector="GenCopy", seed=42):
    vm = JikesRVM(make_platform("p6"), collector=collector,
                  heap_mb=64, seed=seed)
    return vm.run(get_benchmark(benchmark), input_scale=0.5)


def build():
    training = run(TRAIN)
    model = fit_power_model(training.timeline, "p6")
    rows = []
    for name in EVAL:
        for collector in ("GenCopy", "SemiSpace"):
            result = run(name, collector=collector)
            mae, relative = evaluate_power_model(
                model, result.timeline
            )
            rows.append((name, collector, mae, relative))
    return model, rows


def test_ext_power_estimator(benchmark):
    model, rows = once(benchmark, build)

    lines = [
        "Extension: HPM-counter power estimation "
        "(Contreras & Martonosi, ISLPED'05 / paper ref [37])",
        "",
        f"model (trained on {TRAIN}): {model.describe()}",
        "",
        f"{'benchmark':16s} {'collector':10s} {'MAE mW':>8s} "
        f"{'rel err %':>10s}",
        "-" * 48,
    ]
    for name, collector, mae, relative in rows:
        lines.append(
            f"{name:16s} {collector:10s} {1000 * mae:8.0f} "
            f"{100 * relative:10.2f}"
        )
    lines.append("")
    lines.append(
        "counter-derived power tracks true power within a few percent "
        "across unseen benchmarks and collectors — the enabling "
        "mechanism for the power-aware scheduling the paper proposes"
    )
    emit("ext_power_estimator", "\n".join(lines))

    assert model.c1 > 0  # utilization correlation learned
    assert model.training_error_w < 0.8
    # Generalizes: every evaluation point within 8 % relative error.
    assert all(relative < 0.08 for *_, relative in rows)
