"""Extension: thermal-aware GC scheduling on a long-running server
workload (Sections VI-C + VII).

A fan-failed Pentium M runs the `jbb_like` server workload from its
operating temperature (warm start, as a long-running server would).
Without intervention the die crosses the 99 C emergency trip point and
the hardware halves the duty cycle.  With the thermal-GC policy, the
VM front-loads collection work (the low-power component) when the die
crosses a 95 C software threshold, deferring or reducing the hardware
emergency.

The policy uses the SemiSpace collector: its full-heap traces are the
low-power dwell the paper describes (Section VI-C), whereas a
generational collector's *minor* collections are small-footprint,
high-IPC, high-power phases — forcing those would heat the die, not
cool it.
"""


from benchmarks.common import emit
from benchmarks.conftest import once
from repro.analysis.thermal import thermal_replay
from repro.extensions.thermal_policy import ThermalAwareVM
from repro.hardware.platform import make_platform
from repro.jvm.vm import JikesRVM
from repro.workloads import get_benchmark

SCALE = 0.35
WARM_START_C = 95.5


def thermal_trace(run):
    trace = thermal_replay(run.timeline, fan_enabled=False)
    # Replay from the same warm start the run used.
    return trace


def run_plain():
    platform = make_platform("p6", fan_enabled=False)
    vm = JikesRVM(platform, collector="SemiSpace", heap_mb=64, seed=42,
                  initial_temperature_c=WARM_START_C)
    run = vm.run(get_benchmark("jbb_like"), input_scale=SCALE,
                 repetitions=5)
    return run, replay_warm(run)


def run_policy():
    platform = make_platform("p6", fan_enabled=False)
    vm = ThermalAwareVM(platform, collector="SemiSpace", heap_mb=64,
                        seed=42, policy_threshold_c=95.0,
                        min_garbage_bytes=4 << 20,
                        initial_temperature_c=WARM_START_C)
    run = vm.run(get_benchmark("jbb_like"), input_scale=SCALE,
                 repetitions=5)
    return run, replay_warm(run), vm.policy_stats


def replay_warm(run):
    from repro.hardware.thermal import PENTIUM_M_THERMAL, ThermalModel
    from repro.analysis.thermal import ThermalTrace
    import numpy as np

    model = ThermalModel(PENTIUM_M_THERMAL, fan_enabled=False)
    model.reset(WARM_START_C)
    times, temps, throttled = [], [], []
    t = 0.0
    timeline = run.timeline
    for seg in timeline:
        dt = seg.duration_s(timeline.clock_hz)
        model.step(seg.cpu_power_w, dt, record=False)
        t += dt
        times.append(t)
        temps.append(model.temperature_c)
        throttled.append(model.throttled)
    return ThermalTrace(
        times_s=np.asarray(times),
        temperature_c=np.asarray(temps),
        throttled=np.asarray(throttled, dtype=bool),
        fan_enabled=False,
    )


def build():
    return run_plain(), run_policy()


def test_ext_thermal_policy(benchmark):
    (plain_run, plain_trace), (pol_run, pol_trace, stats) = once(
        benchmark, build
    )

    plain_throttled = float(plain_trace.throttled.mean())
    pol_throttled = float(pol_trace.throttled.mean())
    lines = [
        "Extension: thermal-aware GC scheduling (jbb_like, fan "
        "disabled)",
        "",
        f"{'mode':18s} {'peak C':>7s} {'throttled %':>12s} "
        f"{'time s':>8s} {'collections':>12s}",
        "-" * 62,
        f"{'hardware only':18s} {plain_trace.peak_c:7.1f} "
        f"{100 * plain_throttled:12.1f} {plain_run.duration_s:8.1f} "
        f"{plain_run.gc_stats.collections:12d}",
        f"{'GC-as-coolant':18s} {pol_trace.peak_c:7.1f} "
        f"{100 * pol_throttled:12.1f} {pol_run.duration_s:8.1f} "
        f"{pol_run.gc_stats.collections:12d}",
        "",
        f"policy fired {stats.triggers} times "
        f"(of {stats.checks} checks), at a mean die temperature of "
        + (
            f"{sum(stats.trigger_temps_c) / len(stats.trigger_temps_c):.1f} C"
            if stats.trigger_temps_c else "n/a"
        ),
        "",
        "scheduling the low-power component when hot reduces throttled "
        "residency — the paper's Section VI-C suggestion, demonstrated",
    ]
    emit("ext_thermal_policy", "\n".join(lines))

    assert stats.triggers > 0
    assert pol_run.gc_stats.collections > plain_run.gc_stats.collections
    # Less time spent hardware-throttled with the policy active.
    assert pol_throttled <= plain_throttled
