"""Figure 1: temperature behavior under repetitive `_222_mpegaudio`.

Paper: with the fan enabled the die holds roughly 60 C; with the fan
disabled it climbs to the 99 C trip point after about 240 seconds and
enters emergency throttling (50 % duty cycle), "proportionally
decreasing performance".
"""

from benchmarks.common import emit
from benchmarks.conftest import once
from repro.analysis.thermal import thermal_experiment


def run_fig01():
    fan_on = thermal_experiment(repetitions=30, fan_enabled=True)
    fan_off = thermal_experiment(repetitions=55, fan_enabled=False)
    return fan_on, fan_off


def test_fig01_thermal(benchmark):
    (res_on, trace_on), (res_off, trace_off) = once(benchmark,
                                                    run_fig01)

    t99 = trace_off.time_to(99.0)
    lines = [
        "Figure 1: Pentium M running repetitive _222_mpegaudio "
        "(Jikes RVM, GenCopy)",
        "",
        f"{'scenario':14s} {'steady/peak C':>14s} {'t(99C) s':>10s} "
        f"{'throttled':>10s} {'run s':>8s}",
        "-" * 62,
        f"{'fan enabled':14s} {trace_on.steady_c:14.1f} "
        f"{'-':>10s} {str(trace_on.ever_throttled):>10s} "
        f"{res_on.duration_s:8.1f}",
        f"{'fan disabled':14s} {trace_off.peak_c:14.1f} "
        f"{'never' if t99 is None else str(round(t99)):>10s} "
        f"{str(trace_off.ever_throttled):>10s} "
        f"{res_off.duration_s:8.1f}",
        "",
        "paper: fan on ~60 C steady; fan off reaches 99 C after "
        "~240 s, then 50% duty-cycle throttling engages",
    ]
    emit("fig01_thermal", "\n".join(lines))

    # Shape assertions.
    assert not trace_on.ever_throttled
    assert 50.0 < trace_on.steady_c < 70.0
    assert trace_off.ever_throttled
    assert t99 is not None and 120.0 < t99 < 400.0
    assert trace_off.peak_c <= 101.0  # throttling caps the ramp
    # Throttling feedback stretched the fan-off run's wall time
    # (only the post-trip tail runs at 50% duty, so the average
    # per-repetition stretch is a few percent).
    per_rep_on = res_on.duration_s / 30
    per_rep_off = res_off.duration_s / 55
    assert per_rep_off > per_rep_on * 1.02
