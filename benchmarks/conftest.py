"""Session fixtures for the figure-regeneration harness."""

import pytest

from benchmarks.common import ExperimentCache


@pytest.fixture(scope="session")
def cache():
    """One experiment cache shared by every figure module."""
    return ExperimentCache()


def once(benchmark_fixture, fn):
    """Run *fn* exactly once under pytest-benchmark timing.

    The harness regenerates whole figures; re-running them for timing
    statistics would multiply hours of simulation, so each figure is
    timed as a single round.
    """
    return benchmark_fixture.pedantic(fn, rounds=1, iterations=1)
