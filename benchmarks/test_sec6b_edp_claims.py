"""Section VI-B: the specific energy-efficiency comparisons.

Paper numbers checked for shape:

* GenMS over SemiSpace improves javac's EDP by as much as 70 % @32 MB;
* `_209_db`: SemiSpace beats the best GenCopy point by ~5 % @128 MB;
* growing 32 -> 48 MB cuts SemiSpace EDP by 56/50/27 % on
  javac/mtrt/euler, versus only 20/2/3 % for GenCopy;
* memory energy is ~7 % (SpecJVM98), ~5 % (DaCapo), ~8 % (JGF) of CPU
  energy.
"""


from benchmarks.common import DACAPO, JGF, SPECJVM98, emit
from benchmarks.conftest import once


def build(cache):
    drops = {}
    for name in ("_213_javac", "_227_mtrt", "euler"):
        for collector in ("SemiSpace", "GenCopy"):
            a = cache.get(name, collector=collector, heap_mb=32)
            b = cache.get(name, collector=collector, heap_mb=48)
            drops[(name, collector)] = 1 - b.edp / a.edp
    genms = cache.get("_213_javac", collector="GenMS", heap_mb=32)
    ss = cache.get("_213_javac", collector="SemiSpace", heap_mb=32)
    genms_gain = 1 - genms.edp / ss.edp

    db_ss = cache.get("_209_db", collector="SemiSpace", heap_mb=128)
    db_gc = cache.get("_209_db", collector="GenCopy", heap_mb=128)
    db_gain = 1 - db_ss.edp / db_gc.edp

    mem_ratio = {}
    for suite, names, heap in (("SpecJVM98", SPECJVM98, 32),
                               ("DaCapo", DACAPO, 48),
                               ("JGF", JGF, 32)):
        recs = [
            cache.get(n, collector="SemiSpace", heap_mb=heap)
            for n in names
        ]
        mem_ratio[suite] = sum(r.mem_ratio for r in recs) / len(recs)
    return drops, genms_gain, db_gain, mem_ratio


def test_sec6b_edp_claims(benchmark, cache):
    drops, genms_gain, db_gain, mem_ratio = once(
        benchmark, lambda: build(cache)
    )

    paper_ss = {"_213_javac": 0.56, "_227_mtrt": 0.50, "euler": 0.27}
    paper_gen = {"_213_javac": 0.20, "_227_mtrt": 0.02, "euler": 0.03}
    lines = [
        "Section VI-B: EDP comparisons",
        "",
        "EDP reduction when growing the heap 32 -> 48 MB:",
        f"{'benchmark':12s} {'SemiSpace':>10s} {'paper':>7s} "
        f"{'GenCopy':>9s} {'paper':>7s}",
        "-" * 48,
    ]
    for name in ("_213_javac", "_227_mtrt", "euler"):
        lines.append(
            f"{name:12s} {100 * drops[(name, 'SemiSpace')]:9.1f}% "
            f"{100 * paper_ss[name]:6.0f}% "
            f"{100 * drops[(name, 'GenCopy')]:8.1f}% "
            f"{100 * paper_gen[name]:6.0f}%"
        )
    lines += [
        "",
        "GenMS vs SemiSpace EDP @32 MB (javac): "
        f"{100 * genms_gain:.1f}% better (paper: ~70%)",
        "_209_db @128 MB: SemiSpace beats GenCopy by "
        f"{100 * db_gain:.1f}% (paper: ~5%)",
        "",
        "memory energy / CPU energy by suite "
        "(paper: 7% / 5% / 8%):",
    ] + [
        f"  {suite:10s} {100 * ratio:5.1f}%"
        for suite, ratio in mem_ratio.items()
    ]
    emit("sec6b_edp_claims", "\n".join(lines))

    # SemiSpace drops are large and ordered javac > mtrt > euler.
    assert drops[("_213_javac", "SemiSpace")] > 0.40
    assert drops[("_227_mtrt", "SemiSpace")] > 0.35
    assert 0.10 < drops[("euler", "SemiSpace")] < 0.45
    assert (
        drops[("_213_javac", "SemiSpace")]
        > drops[("_227_mtrt", "SemiSpace")]
        > drops[("euler", "SemiSpace")]
    )
    # GenCopy is far flatter than SemiSpace on every one of them.
    for name in ("_213_javac", "_227_mtrt", "euler"):
        assert (
            drops[(name, "GenCopy")]
            < drops[(name, "SemiSpace")] * 0.75
        )
    # Generational advantage at 32 MB, db crossover at 128 MB.
    assert genms_gain > 0.4
    assert 0.0 < db_gain < 0.25
    # Memory energy ratios in the paper's band.
    for suite, ratio in mem_ratio.items():
        assert 0.02 < ratio < 0.15, suite
