"""Extension: Kaffe interpreter vs JIT (paper Section IV-A / ref [20]).

The paper runs Kaffe in JIT mode but notes the interpreter
configuration exists; Farkas et al. (the paper's reference [20])
measured exactly this trade on a pocket computer.  This study runs
both configurations on the PXA255 and reports the energy cost of
interpretation: no JIT-compilation energy, but several times the
execution time — and therefore several times the energy.
"""

import numpy as np

from benchmarks.common import emit
from benchmarks.conftest import once
from repro.hardware.platform import make_platform
from repro.jvm.components import Component
from repro.jvm.vm import KaffeVM
from repro.measurement.daq import DAQ
from repro.core.decomposition import decompose
from repro.workloads import get_benchmark

BENCHES = ("_201_compress", "_202_jess", "_228_jack")


def run(benchmark, mode):
    platform = make_platform("pxa255")
    vm = KaffeVM(platform, mode=mode, heap_mb=16, seed=42)
    result = vm.run(get_benchmark(benchmark), input_scale=0.1)
    trace = DAQ(platform, np.random.default_rng(5)).acquire(
        result.timeline
    )
    breakdown = decompose(trace, "kaffe")
    return {
        "time_s": result.duration_s,
        "energy_j": trace.cpu_energy_j() + trace.mem_energy_j(),
        "jit_frac": breakdown.fraction(Component.JIT),
        "jit_compiles": result.jit_compiles,
    }


def build():
    return {
        name: {mode: run(name, mode) for mode in ("jit", "interp")}
        for name in BENCHES
    }


def test_ext_interpreter(benchmark):
    results = once(benchmark, build)

    lines = [
        "Extension: Kaffe interpreter vs JIT on the PXA255 "
        "(-s10, 16 MB)",
        "",
        f"{'benchmark':16s} {'mode':8s} {'time s':>8s} "
        f"{'energy J':>9s} {'JIT %':>6s}",
        "-" * 52,
    ]
    for name, modes in results.items():
        for mode, r in modes.items():
            lines.append(
                f"{name:16s} {mode:8s} {r['time_s']:8.1f} "
                f"{r['energy_j']:9.2f} {100 * r['jit_frac']:6.1f}"
            )
    lines.append("")
    lines.append(
        "interpretation spends no energy compiling but several times "
        "more executing — the reason the paper (and Farkas et al.) "
        "measure the JIT configuration"
    )
    emit("ext_interpreter", "\n".join(lines))

    for name, modes in results.items():
        jit, interp = modes["jit"], modes["interp"]
        # No JIT component in interpreter mode.
        assert interp["jit_compiles"] == 0
        assert interp["jit_frac"] == 0.0
        # Interpretation costs 2-6x the time and energy.
        assert interp["time_s"] > 2.0 * jit["time_s"], name
        assert interp["energy_j"] > 1.8 * jit["energy_j"], name
