"""Ablation: bounded-nursery size (a design choice behind GenCopy/GenMS).

The simulator uses the classic bounded nursery (heap/8 clamped to
[1 MB, 4 MB]).  This ablation sweeps nursery sizes on a fixed heap and
shows the classic GC trade-off the default sits on top of:

* tiny nurseries collect constantly and promote prematurely
  (higher survival per collection -> more copying);
* huge nurseries steal space from the mature generation, forcing
  full-heap collections at small total heaps.
"""


from benchmarks.common import emit
from benchmarks.conftest import once
from repro.hardware.platform import make_platform
from repro.jvm.gc.generational import GenCopy
from repro.jvm.vm import JikesRVM
from repro.units import MB
from repro.workloads import get_benchmark

NURSERY_MB = (0.5, 1, 2, 4, 8)
HEAP_MB = 48


class _NurseryVM(JikesRVM):
    """Jikes RVM with an explicit nursery size (uses the VM's
    collector-construction hook)."""

    def __init__(self, platform, nursery_bytes, **kwargs):
        super().__init__(platform, collector="GenCopy", **kwargs)
        self._nursery_bytes = nursery_bytes

    def _make_collector(self, rng):
        return GenCopy(self.heap_bytes, rng,
                       nursery_bytes=self._nursery_bytes)


def build():
    rows = []
    for nursery_mb in NURSERY_MB:
        platform = make_platform("p6")
        vm = _NurseryVM(
            platform, nursery_bytes=int(nursery_mb * MB),
            heap_mb=HEAP_MB, seed=42,
        )
        run = vm.run(get_benchmark("_213_javac"), input_scale=0.5)
        stats = run.gc_stats
        rows.append({
            "nursery_mb": nursery_mb,
            "duration_s": run.duration_s,
            "minors": stats.minor_collections,
            "fulls": stats.full_collections,
            "copied_mb": stats.copied_bytes / MB,
            "nepotism_mb": stats.nepotism_bytes / MB,
        })
    return rows


def test_ablation_nursery(benchmark):
    rows = once(benchmark, build)

    lines = [
        f"Ablation: GenCopy nursery size (javac, {HEAP_MB} MB heap, "
        "half input)",
        "",
        f"{'nursery':>8s} {'time s':>8s} {'minors':>7s} {'fulls':>6s} "
        f"{'copied MB':>10s} {'nepotism MB':>12s}",
        "-" * 56,
    ]
    for r in rows:
        lines.append(
            f"{r['nursery_mb']:7.1f}M {r['duration_s']:8.2f} "
            f"{r['minors']:7d} {r['fulls']:6d} {r['copied_mb']:10.1f} "
            f"{r['nepotism_mb']:12.2f}"
        )
    lines.append("")
    lines.append(
        "small nurseries collect constantly; large nurseries squeeze "
        "the mature semispaces — the bounded default (4 MB at this "
        "heap) sits near the sweet spot"
    )
    emit("ablation_nursery", "\n".join(lines))

    # Minor-collection count decreases monotonically with nursery size.
    minors = [r["minors"] for r in rows]
    assert minors == sorted(minors, reverse=True)
    # The tiny nursery is not the fastest configuration.
    fastest = min(rows, key=lambda r: r["duration_s"])
    assert fastest["nursery_mb"] > 0.5
