"""Extension: adaptive heap sizing (the paper's reference [1]).

Section VI-A: "increasing the heap size has considerable energy
benefits since the garbage collector is invoked less often."  A fixed
large heap buys those benefits by committing memory up front; the
adaptive controller grows the heap only while GC overhead is high.
This study compares `_213_javac` under a small fixed heap, a large
fixed heap, and the adaptive controller starting small.
"""

import numpy as np

from benchmarks.common import emit
from benchmarks.conftest import once
from repro.extensions.heap_sizing import AdaptiveHeapVM
from repro.hardware.platform import make_platform
from repro.jvm.vm import JikesRVM
from repro.measurement.daq import DAQ
from repro.workloads import get_benchmark

SMALL, LARGE = 32, 128


def measure(vm, label):
    run = vm.run(get_benchmark("_213_javac"), input_scale=0.5)
    trace = DAQ(vm.platform, np.random.default_rng(5)).acquire(
        run.timeline
    )
    energy = trace.cpu_energy_j() + trace.mem_energy_j()
    return {
        "label": label,
        "time_s": run.duration_s,
        "energy_j": energy,
        "edp": energy * run.duration_s,
        "collections": run.gc_stats.collections,
    }


def build():
    rows = [
        measure(
            JikesRVM(make_platform("p6"), collector="SemiSpace",
                     heap_mb=SMALL, seed=42),
            f"fixed {SMALL} MB",
        ),
        measure(
            JikesRVM(make_platform("p6"), collector="SemiSpace",
                     heap_mb=LARGE, seed=42),
            f"fixed {LARGE} MB",
        ),
    ]
    adaptive = AdaptiveHeapVM(
        make_platform("p6"), collector="SemiSpace", heap_mb=SMALL,
        seed=42, overhead_target=0.15, max_heap_mb=LARGE,
    )
    rows.append(measure(adaptive, "adaptive"))
    return rows, adaptive


def test_ext_heap_sizing(benchmark):
    rows, adaptive = once(benchmark, build)

    lines = [
        "Extension: adaptive heap sizing (javac, SemiSpace, half "
        "input)",
        "",
        f"{'configuration':16s} {'time s':>8s} {'energy J':>9s} "
        f"{'EDP Js':>9s} {'GCs':>5s}",
        "-" * 52,
    ]
    for r in rows:
        lines.append(
            f"{r['label']:16s} {r['time_s']:8.2f} "
            f"{r['energy_j']:9.1f} {r['edp']:9.1f} "
            f"{r['collections']:5d}"
        )
    lines.append("")
    lines.append(
        f"controller grew the heap {adaptive.sizing_stats.growths} "
        f"times to {adaptive.final_heap_mb:.0f} MB"
    )
    lines.append(
        "adaptive sizing recovers most of the large heap's "
        "time/energy benefit while starting from the small footprint"
    )
    emit("ext_heap_sizing", "\n".join(lines))

    small, large, adaptive_row = rows
    assert adaptive.sizing_stats.growths > 0
    # The controller lands between the fixed extremes, close to large.
    assert adaptive_row["edp"] < small["edp"]
    gap = small["edp"] - large["edp"]
    recovered = small["edp"] - adaptive_row["edp"]
    assert recovered > 0.6 * gap
    assert adaptive_row["collections"] < small["collections"]
