"""Execution-engine performance harness.

Measures the two numbers PR 3's batched engine is accountable for and
writes them to ``BENCH_engine.json``:

* **segments/sec** — a scheduler microbenchmark: one long activity split
  into tens of thousands of chunks (``max_chunk_s=20 us``), the regime
  the vectorized path exists for.  Reported for both engines.
* **end-to-end wall time** — a full ``repro run`` equivalent
  (``_213_javac`` on jikes/p6 at half input scale) under the default
  (batched) engine.
* **amortized sweep speedup** — a 4-point DAQ-period sweep run both
  ways: fused (every point re-simulates, the pre-split behavior) and
  split (one simulate phase, N measure phases off its artifact).  The
  ratio is the split pipeline's accountability number; it is a
  same-machine ratio, so it gates robustly on shared runners.

Both are compared against ``baseline.json``, which carries two kinds of
reference values:

* ``pre_pr`` — the same measurements taken from a git worktree of the
  last pre-engine commit (see the file's provenance note).  The speedup
  the harness reports is *current vs. pre_pr*.
* ``gate`` — the post-engine reference rate used by
  ``scripts/check_perf.py`` to fail CI on a >30 % regression.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_engine.py
    PYTHONPATH=src python benchmarks/perf/bench_engine.py \
        --output BENCH_engine.json --repeats 5
"""

import argparse
import json
import time
from pathlib import Path

HERE = Path(__file__).resolve().parent
BASELINE_PATH = HERE / "baseline.json"

MICRO_CHUNK_S = 2e-5
MICRO_INSTRUCTIONS = 2_000_000_000

E2E_CONFIG = dict(
    benchmark="_213_javac", vm="jikes", platform="p6",
    heap_mb=32, input_scale=0.5, seed=42,
)

#: DAQ periods of the amortized-sweep benchmark (the `repro overhead`
#: defaults): 40 us is the paper's DAQ, the rest walk the
#: accuracy-vs-overhead frontier.
SWEEP_PERIODS_S = (40e-6, 200e-6, 1e-3, 1e-2)


def _microbench_once(engine):
    from repro.hardware.activity import Activity
    from repro.hardware.cache import MemoryBehavior
    from repro.hardware.platform import make_platform
    from repro.jvm.components import Component
    from repro.jvm.scheduler import InstrumentedScheduler
    from repro.units import KB, MB

    platform = make_platform("p6")
    sched = InstrumentedScheduler(
        platform, max_chunk_s=MICRO_CHUNK_S, engine=engine
    )
    activity = Activity(
        component=int(Component.APP),
        instructions=MICRO_INSTRUCTIONS,
        behavior=MemoryBehavior(
            footprint_bytes=4 * MB, hot_bytes=256 * KB,
            locality=0.8, spatial_factor=0.5,
        ),
        refs_per_instr=0.3,
        l1_miss_rate=0.03,
    )
    start = time.perf_counter()
    sched.execute(activity)
    elapsed = time.perf_counter() - start
    return len(sched.timeline), elapsed


def microbench(engine, repeats):
    """Best segments/sec over *repeats* runs (max is the least noisy
    estimator of the machine's attainable rate)."""
    best = 0.0
    segments = 0
    for _ in range(repeats):
        segments, elapsed = _microbench_once(engine)
        best = max(best, segments / elapsed)
    return {"segments": segments, "segments_per_sec": round(best, 1)}


def e2e(repeats):
    """Best wall time for one full experiment under the default engine."""
    from repro.core.experiment import run_experiment

    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        run_experiment(**E2E_CONFIG)
        best = min(best, time.perf_counter() - start)
    return {"config": E2E_CONFIG, "wall_s": round(best, 4)}


def sweep(repeats):
    """Best wall time for a DAQ-period sweep, fused vs split.

    Fused runs ``Experiment.run()`` once per period (simulate + measure
    every time); split simulates once, snapshots the artifact, and
    measures it once per period.  Both produce byte-identical cell
    exports (tests/campaign/test_sim_sharing.py), so the ratio is pure
    overhead, not a fidelity trade.
    """
    from dataclasses import replace as dc_replace

    from repro.core.experiment import Experiment, ExperimentConfig
    from repro.core.simulation import MeasurementConfig

    config = ExperimentConfig(**E2E_CONFIG)
    fused = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for period_s in SWEEP_PERIODS_S:
            Experiment(dc_replace(config, daq_period_s=period_s)).run()
        fused = min(fused, time.perf_counter() - start)
    split = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        experiment = Experiment(config)
        artifact = experiment.simulate().artifact()
        for period_s in SWEEP_PERIODS_S:
            experiment.measure(
                artifact, MeasurementConfig(daq_period_s=period_s)
            )
        split = min(split, time.perf_counter() - start)
    return {
        "periods_us": [round(p * 1e6, 1) for p in SWEEP_PERIODS_S],
        "config": E2E_CONFIG,
        "fused_wall_s": round(fused, 4),
        "split_wall_s": round(split, 4),
        "amortized_speedup": round(fused / split, 2),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_engine.json",
                        help="result file (default: ./BENCH_engine.json)")
    parser.add_argument("--repeats", type=int, default=5,
                        help="measurement repeats, best-of (default 5)")
    parser.add_argument("--baseline", default=str(BASELINE_PATH),
                        help="baseline file to compare against")
    args = parser.parse_args(argv)

    baseline = json.loads(Path(args.baseline).read_text())
    pre = baseline["pre_pr"]

    results = {
        "schema": "repro-bench-engine-v1",
        "microbench": {
            "max_chunk_s": MICRO_CHUNK_S,
            "instructions": MICRO_INSTRUCTIONS,
            "repeats": args.repeats,
            "batched": microbench("batched", args.repeats),
            "legacy": microbench("legacy", args.repeats),
        },
        "e2e": {"repeats": args.repeats, **e2e(args.repeats)},
        "sweep": {"repeats": args.repeats, **sweep(args.repeats)},
    }
    rate = results["microbench"]["batched"]["segments_per_sec"]
    wall = results["e2e"]["wall_s"]
    results["vs_pre_pr"] = {
        "baseline_commit": baseline["captured_at_commit"],
        "segments_per_sec_speedup": round(
            rate / pre["segments_per_sec"], 2
        ),
        "e2e_speedup": round(pre["e2e_wall_s"] / wall, 2),
    }

    out = Path(args.output)
    out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"segments/sec  batched: {rate:>12,.0f}")
    print(f"segments/sec   legacy: "
          f"{results['microbench']['legacy']['segments_per_sec']:>12,.0f}")
    print(f"segments/sec  pre-PR : {pre['segments_per_sec']:>12,.0f}  "
          f"(speedup "
          f"{results['vs_pre_pr']['segments_per_sec_speedup']}x)")
    print(f"e2e wall      current: {wall:>9.3f} s")
    print(f"e2e wall      pre-PR : {pre['e2e_wall_s']:>9.3f} s  "
          f"(speedup {results['vs_pre_pr']['e2e_speedup']}x)")
    sw = results["sweep"]
    print(f"sweep ({len(SWEEP_PERIODS_S)} DAQ periods)  "
          f"fused: {sw['fused_wall_s']:>7.3f} s  "
          f"split: {sw['split_wall_s']:>7.3f} s  "
          f"(amortized {sw['amortized_speedup']}x)")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
