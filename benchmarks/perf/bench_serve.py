"""Serving-layer load harness.

Storms a live ``repro serve`` instance — real HTTP, real simulator —
with N concurrent clients submitting K distinct CPU-bound specs, once
per worker mode, and writes the numbers the fleet design is
accountable for to ``BENCH_serve.json``:

* **sustained jobs/sec** — distinct specs executed per wall second,
  thread mode vs process mode.  Thread workers serialize CPU-bound
  campaigns on one GIL; the process pool is expected to beat them on
  any multi-core host (``config.cpu_count`` records what this run had
  to work with — on a single core there is no parallelism to win, and
  the latency isolation below is the observable signal).
* **p50/p99 submit latency** — POST round-trip as the clients saw it,
  dedup and backpressure included.  In thread mode the CPU-bound
  campaigns and the HTTP handlers fight over one GIL, so submit tail
  latency balloons while jobs run; process mode moves the compute out
  of the serving process and keeps the tail flat.
* **dedup hit-rate** — the storm submits each spec many times; all but
  the first collapse via single-flight coalescing or the result store.
* **byte identity** — served bytes equal a direct in-process
  ``repro run --spec`` of the same scenario.
* **exactly-once across instances** — the same storm against *two*
  service instances sharing one result store executes each spec once
  fleet-wide, enforced by the per-key lease files.

``scripts/check_perf.py`` validates the output schema and its
correctness invariants in CI (reduced configuration)::

    PYTHONPATH=src python benchmarks/perf/bench_serve.py
    PYTHONPATH=src python benchmarks/perf/bench_serve.py \
        --clients 4 --specs 3 --workers 2 --input-scale 0.2
"""

import argparse
import json
import os
import tempfile
import threading
import time
from pathlib import Path

BENCHMARK = "_202_jess"


def build_spec_bodies(n_specs, input_scale):
    """K distinct single-cell TOML specs (a heap sweep), CPU-bound."""
    bodies = []
    for i in range(n_specs):
        bodies.append(
            f'[axes]\nbenchmark = "{BENCHMARK}"\n'
            f'collector = "SemiSpace"\nheap_mb = {32 + 16 * i}\n'
            f'input_scale = {input_scale}\n'.encode()
        )
    return bodies


def spec_ids(bodies):
    from repro.spec import ScenarioSpec

    return [
        ScenarioSpec.from_bytes(body, fmt="toml").spec_hash()
        for body in bodies
    ]


def percentile(values, q):
    """Nearest-rank percentile of *values* (q in [0, 100])."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1,
               max(0, int(round(q / 100.0 * (len(ordered) - 1)))))
    return ordered[rank]


def _start_server(mode, result_dir, workers, queue_size=256,
                  job_trace=False):
    from repro.serve.server import ExperimentService, ServiceServer

    service = ExperimentService(
        queue_size=queue_size, job_workers=workers, cell_workers=1,
        use_cell_cache=False, result_dir=result_dir,
        worker_mode=mode, job_trace=job_trace,
    )
    return ServiceServer(service=service, host="127.0.0.1",
                         port=0).start()


def _client_storm(url, bodies, clients, rounds, latencies):
    """N client threads, each submitting every spec *rounds* times."""
    from repro.serve.client import ServiceBusy, ServiceClient

    lock = threading.Lock()
    barrier = threading.Barrier(clients)

    def client_main(n):
        client = ServiceClient(url, timeout_s=60.0)
        barrier.wait()
        mine = []
        for _ in range(rounds):
            for j in range(len(bodies)):
                body = bodies[(j + n) % len(bodies)]
                t0 = time.perf_counter()
                while True:
                    try:
                        client.submit_bytes(body, fmt="toml")
                        break
                    except ServiceBusy as exc:
                        time.sleep(min(exc.retry_after_s, 0.2))
                mine.append(time.perf_counter() - t0)
        with lock:
            latencies.extend(mine)

    threads = [
        threading.Thread(target=client_main, args=(n,), daemon=True)
        for n in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


def storm_mode(mode, bodies, ids, args, job_trace=False):
    """One full storm against a fresh service in *mode*."""
    from repro.serve.client import ServiceClient

    prefix = f"bench-serve-{mode}{'-traced' if job_trace else ''}-"
    result_dir = Path(tempfile.mkdtemp(prefix=prefix))
    server = _start_server(mode, result_dir, args.workers,
                           job_trace=job_trace)
    latencies = []
    try:
        start = time.perf_counter()
        _client_storm(server.url, bodies, args.clients, args.rounds,
                      latencies)
        waiter = ServiceClient(server.url, timeout_s=60.0)
        for job_id in ids:
            waiter.wait(job_id, timeout_s=300.0, poll_s=0.05)
        wall = time.perf_counter() - start
        metrics = waiter.metrics()
    finally:
        server.stop(drain_timeout=60.0)
    counters = metrics["counters"]
    executed = counters.get("serve.jobs_executed", 0)
    submits = len(latencies)
    return {
        "wall_s": round(wall, 4),
        "executed": executed,
        "submits": submits,
        "jobs_per_sec": round(executed / wall, 3) if wall > 0 else 0.0,
        "submits_per_sec": (
            round(submits / wall, 1) if wall > 0 else 0.0
        ),
        "submit_latency_s": {
            "p50": round(percentile(latencies, 50), 6),
            "p99": round(percentile(latencies, 99), 6),
            "mean": round(sum(latencies) / len(latencies), 6)
            if latencies else 0.0,
            "n": submits,
        },
        "dedup_rate": round(metrics["derived"]["dedup_rate"], 4),
        "result_dir": str(result_dir),
    }


def multi_instance_storm(mode, bodies, ids, args):
    """Two instances, one shared store: each spec must execute exactly
    once fleet-wide (the lease is the only cross-instance lock)."""
    from repro.serve.client import ServiceClient

    result_dir = Path(tempfile.mkdtemp(prefix="bench-serve-fleet-"))
    servers = [
        _start_server(mode, result_dir, max(1, args.workers // 2))
        for _ in range(2)
    ]
    try:
        threads = []
        latencies = [[] for _ in servers]
        for i, server in enumerate(servers):
            thread = threading.Thread(
                target=_client_storm,
                args=(server.url, bodies,
                      max(1, args.clients // 2), args.rounds,
                      latencies[i]),
                daemon=True,
            )
            threads.append(thread)
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for server in servers:
            waiter = ServiceClient(server.url, timeout_s=60.0)
            for job_id in ids:
                waiter.wait(job_id, timeout_s=300.0, poll_s=0.05)
        wall = time.perf_counter() - start
        per_instance = []
        for server in servers:
            counters = ServiceClient(server.url).metrics()["counters"]
            per_instance.append({
                "executed": counters.get("serve.jobs_executed", 0),
                "lease_coalesced": counters.get(
                    "serve.jobs_lease_coalesced", 0
                ),
                "result_cache_hits": counters.get(
                    "serve.result_cache_hits", 0
                ),
                "lease_takeovers": counters.get(
                    "serve.lease_takeovers", 0
                ),
            })
    finally:
        for server in servers:
            server.stop(drain_timeout=60.0)
    executed_total = sum(inst["executed"] for inst in per_instance)
    return {
        "instances": len(servers),
        "worker_mode": mode,
        "specs": len(ids),
        "wall_s": round(wall, 4),
        "executed_total": executed_total,
        "exactly_once": executed_total == len(ids),
        "per_instance": per_instance,
    }


def tracing_overhead(mode, bodies, ids, args):
    """Self-overhead of distributed job tracing, measured.

    Two back-to-back storms in the same mode into fresh result dirs —
    tracing off, then tracing on — so the overhead number compares
    like with like (same host state, same spec set).  Alongside the
    jobs/sec ratio the traced store is checked for byte identity
    against a direct run: tracing must never change result bytes.
    """
    baseline = storm_mode(mode, bodies, ids, args, job_trace=False)
    traced = storm_mode(mode, bodies, ids, args, job_trace=True)
    baseline.pop("result_dir", None)
    traced_dir = traced.pop("result_dir")
    base_rate = baseline["jobs_per_sec"]
    overhead = (
        round(1.0 - traced["jobs_per_sec"] / base_rate, 4)
        if base_rate > 0 else 0.0
    )
    n_spools = len(list(Path(traced_dir).rglob("*.spans")))
    return {
        "worker_mode": mode,
        "untraced": baseline,
        "traced": traced,
        "overhead_fraction": overhead,
        "spool_files": n_spools,
        "traced_byte_identical": verify_byte_identity(
            bodies, ids, traced_dir
        ),
    }


def verify_byte_identity(bodies, ids, result_dir):
    """Stored bytes for spec 0 equal a direct in-process run."""
    from repro.campaign.runner import CampaignRunner
    from repro.serve.server import ResultStore, build_result_payload, encode_result
    from repro.spec import ScenarioSpec

    spec = ScenarioSpec.from_bytes(bodies[0], fmt="toml")
    served = ResultStore(result_dir).get_bytes(ids[0])
    direct = CampaignRunner(workers=1).run(spec.campaign_config())
    expected = encode_result(build_result_payload(spec, direct))
    return served == expected


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_serve.json",
                        help="result file (default: ./BENCH_serve.json)")
    parser.add_argument("--clients", type=int, default=8,
                        help="concurrent submitting clients (default 8)")
    parser.add_argument("--specs", type=int, default=6,
                        help="distinct specs in the storm (default 6)")
    parser.add_argument("--rounds", type=int, default=2,
                        help="times each client submits every spec")
    parser.add_argument("--workers", type=int, default=4,
                        help="job workers per service (default 4)")
    parser.add_argument("--input-scale", type=float, default=0.4,
                        help="per-cell CPU weight (default 0.4)")
    parser.add_argument("--worker-mode", default="both",
                        choices=("thread", "process", "both"),
                        help="which modes to storm (default both)")
    parser.add_argument("--skip-multi-instance", action="store_true",
                        help="skip the two-instance exactly-once storm")
    parser.add_argument("--skip-tracing-overhead", action="store_true",
                        help="skip the traced-vs-untraced overhead storm")
    args = parser.parse_args(argv)

    bodies = build_spec_bodies(args.specs, args.input_scale)
    ids = spec_ids(bodies)
    modes = (
        ("thread", "process") if args.worker_mode == "both"
        else (args.worker_mode,)
    )

    results = {
        "schema": "repro-bench-serve-v1",
        "config": {
            "benchmark": BENCHMARK,
            "clients": args.clients,
            "specs": args.specs,
            "rounds": args.rounds,
            "workers": args.workers,
            "input_scale": args.input_scale,
            "cpu_count": os.cpu_count(),
        },
        "modes": {},
    }
    for mode in modes:
        print(f"storming worker_mode={mode} "
              f"({args.clients} clients x {args.specs} specs x "
              f"{args.rounds} rounds, {args.workers} workers) ...")
        results["modes"][mode] = storm_mode(mode, bodies, ids, args)
        m = results["modes"][mode]
        print(f"  {mode:>7}: {m['jobs_per_sec']:.2f} jobs/s "
              f"({m['executed']} executed in {m['wall_s']:.2f} s), "
              f"submit p50 {1e3 * m['submit_latency_s']['p50']:.1f} ms "
              f"p99 {1e3 * m['submit_latency_s']['p99']:.1f} ms, "
              f"dedup {100 * m['dedup_rate']:.1f}%")

    if "thread" in results["modes"] and "process" in results["modes"]:
        thread_mode = results["modes"]["thread"]
        process_mode = results["modes"]["process"]
        results["speedup_process_vs_thread"] = round(
            thread_mode["wall_s"] / process_mode["wall_s"], 2
        ) if process_mode["wall_s"] > 0 else 0.0
        process_p99 = process_mode["submit_latency_s"]["p99"]
        results["p99_isolation_thread_vs_process"] = round(
            thread_mode["submit_latency_s"]["p99"] / process_p99, 2
        ) if process_p99 > 0 else 0.0
        print(f"  process vs thread: "
              f"{results['speedup_process_vs_thread']}x jobs/s "
              f"({results['config']['cpu_count']} cpus), "
              f"{results['p99_isolation_thread_vs_process']}x lower "
              f"p99 submit latency")

    check_dir = results["modes"][modes[-1]].pop("result_dir")
    for mode in modes[:-1]:
        results["modes"][mode].pop("result_dir", None)
    results["byte_identical"] = verify_byte_identity(
        bodies, ids, check_dir
    )
    print(f"  byte-identical to direct run: "
          f"{results['byte_identical']}")

    if not args.skip_tracing_overhead:
        mode = modes[0]
        print(f"storming traced vs untraced (worker_mode={mode}) ...")
        results["tracing_overhead"] = tracing_overhead(
            mode, bodies, ids, args
        )
        t = results["tracing_overhead"]
        print(f"  untraced {t['untraced']['jobs_per_sec']:.2f} jobs/s,"
              f" traced {t['traced']['jobs_per_sec']:.2f} jobs/s "
              f"({100 * t['overhead_fraction']:.1f}% overhead, "
              f"{t['spool_files']} spool files, byte-identical="
              f"{t['traced_byte_identical']})")

    if not args.skip_multi_instance:
        mode = "process" if "process" in modes else modes[0]
        print(f"storming 2 instances sharing one store "
              f"(worker_mode={mode}) ...")
        results["multi_instance"] = multi_instance_storm(
            mode, bodies, ids, args
        )
        fleet = results["multi_instance"]
        print(f"  executed_total {fleet['executed_total']} / "
              f"{fleet['specs']} specs; exactly_once="
              f"{fleet['exactly_once']}")

    out = Path(args.output)
    out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
