"""Figure 6: energy decomposition under Jikes RVM + SemiSpace.

Paper: the JVM can consume up to ~60 % of total energy (javac, 32 MB);
GC averages 37 % at 32 MB falling to 10 % at 128 MB on SpecJVM98, and
32 % -> 11 % (48 -> 128 MB) on DaCapo.
"""


from benchmarks.common import (
    ALL_BENCHMARKS,
    DACAPO,
    SPECJVM98,
    cell,
    emit,
    pct,
)
from benchmarks.conftest import once
from repro.jvm.components import Component

SMALL_HEAP = {"SpecJVM98": 32, "DaCapo": 48, "JGF": 32}


def suite_of(name):
    if name in SPECJVM98:
        return "SpecJVM98"
    if name in DACAPO:
        return "DaCapo"
    return "JGF"


def build(cache):
    wanted = {
        (name, heap): cell(name, collector="SemiSpace", heap_mb=heap)
        for name in ALL_BENCHMARKS
        for heap in (SMALL_HEAP[suite_of(name)], 128)
    }
    by_config = cache.get_many(wanted.values())
    return {key: by_config[cfg] for key, cfg in wanted.items()}


def test_fig06_energy_decomposition(benchmark, cache):
    records = once(benchmark, lambda: build(cache))

    lines = [
        "Figure 6: energy decomposition, Jikes RVM + SemiSpace",
        "",
        f"{'benchmark':16s} {'heap':>5s} {'Opt%':>6s} {'Base%':>6s} "
        f"{'CL%':>6s} {'GC%':>6s} {'App%':>6s} {'JVM%':>6s}",
        "-" * 62,
    ]
    gc_sums = {}
    for (name, heap), rec in records.items():
        app = 1.0 - rec.jvm_fraction
        lines.append(
            f"{name:16s} {heap:5d} {pct(rec.frac(Component.OPT))} "
            f"{pct(rec.frac(Component.BASE))} "
            f"{pct(rec.frac(Component.CL))} "
            f"{pct(rec.frac(Component.GC))} {pct(app)} "
            f"{pct(rec.jvm_fraction)}"
        )
        key = (suite_of(name), heap)
        gc_sums.setdefault(key, []).append(rec.frac(Component.GC))
    lines.append("")
    for (suite, heap), fracs in sorted(gc_sums.items()):
        avg = sum(fracs) / len(fracs)
        lines.append(
            f"suite avg GC energy: {suite:10s} @ {heap:3d} MB = "
            f"{pct(avg)}%"
        )
    lines.append("")
    lines.append(
        "paper: SpecJVM98 GC avg 37% @32 -> 10% @128; DaCapo 32% @48 "
        "-> 11% @128; JVM max ~60% (_213_javac @32)"
    )
    emit("fig06_energy_decomposition", "\n".join(lines))

    # Shape assertions.
    spec_small = gc_sums[("SpecJVM98", 32)]
    spec_large = gc_sums[("SpecJVM98", 128)]
    assert sum(spec_small) / 7 > 0.20
    assert sum(spec_large) / 7 < 0.12
    assert sum(spec_small) > 3 * sum(spec_large)

    dacapo_small = sum(gc_sums[("DaCapo", 48)]) / 5
    dacapo_large = sum(gc_sums[("DaCapo", 128)]) / 5
    assert 0.2 < dacapo_small < 0.45
    assert 0.05 < dacapo_large < 0.18

    javac = records[("_213_javac", 32)]
    assert javac.jvm_fraction > 0.45  # the "up to 60 %" headline
    assert javac.jvm_fraction == max(
        r.jvm_fraction for r in records.values()
    )

    # Base compiler is a sub-percent consumer nearly everywhere.
    base_fracs = [r.frac(Component.BASE) for r in records.values()]
    assert sum(base_fracs) / len(base_fracs) < 0.01
