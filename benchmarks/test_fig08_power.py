"""Figure 8: average and peak power per component (Jikes + GenCopy).

Paper: the GC is one of the least power-hungry components; component
power varies little from benchmark to benchmark; for most benchmarks
the *application* sets the peak power — `_209_db` excepted, where the
GC peaks at 17.5 W.
"""


from benchmarks.common import ALL_BENCHMARKS, emit
from benchmarks.conftest import once
from repro.jvm.components import Component

HEAP = 64


def build(cache):
    return {
        name: cache.get(name, collector="GenCopy", heap_mb=HEAP)
        for name in ALL_BENCHMARKS
    }


def test_fig08_power(benchmark, cache):
    records = once(benchmark, lambda: build(cache))

    lines = [
        f"Figure 8: component power, Jikes RVM + GenCopy @ {HEAP} MB",
        "",
        f"{'benchmark':16s} {'avgApp':>7s} {'avgGC':>7s} {'avgCL':>7s}"
        f" {'pkApp':>7s} {'pkGC':>7s} {'pkCL':>7s} {'peak by':>8s}",
        "-" * 70,
    ]
    peak_by_app = 0
    db_gc_peak = None
    for name, rec in records.items():
        avg = rec.avg_power
        peak = rec.peak_power

        def g(table, comp):
            return table.get(comp, float("nan"))

        peak_comp = max(peak, key=peak.get)
        if peak_comp == Component.APP:
            peak_by_app += 1
        if name == "_209_db":
            db_gc_peak = peak.get(Component.GC)
        lines.append(
            f"{name:16s} {g(avg, Component.APP):7.2f} "
            f"{g(avg, Component.GC):7.2f} "
            f"{g(avg, Component.CL):7.2f} "
            f"{g(peak, Component.APP):7.2f} "
            f"{g(peak, Component.GC):7.2f} "
            f"{g(peak, Component.CL):7.2f} "
            f"{peak_comp.short_name:>8s}"
        )
    lines.append("")
    lines.append(
        "paper: GC is the least power-hungry component; peak power is "
        "set by the application except _209_db (GC peak 17.5 W)"
    )
    emit("fig08_power", "\n".join(lines))

    # GC draws less average power than the app on nearly every bench.
    cooler = sum(
        1 for rec in records.values()
        if Component.GC in rec.avg_power
        and rec.avg_power[Component.GC]
        < rec.avg_power[Component.APP]
    )
    assert cooler >= 13

    # Component power varies little benchmark to benchmark.
    gc_powers = [
        rec.avg_power[Component.GC] for rec in records.values()
        if Component.GC in rec.avg_power
    ]
    assert max(gc_powers) - min(gc_powers) < 2.5

    # Peak power comes from the application for most benchmarks...
    assert peak_by_app >= 10
    # ...but _209_db's GC sets the envelope, near the paper's 17.5 W.
    db = records["_209_db"]
    assert db.peak_power[Component.GC] > db.peak_power[Component.APP]
    assert 15.0 < db_gc_peak < 20.0
