"""Section VI-A: per-component energy claims beyond Figure 6's bars.

* the base compiler consumes under 1 % on average;
* the optimizing compiler averages ~3 % with its maximum on
  `_222_mpegaudio` (paper: 7 %);
* the class loader averages ~3 % with its maximum on `fop`
  (paper: 24 %);
* increasing the heap reduces both execution time and energy
  (the "considerable energy benefits" of fewer collections).
"""


from benchmarks.common import ALL_BENCHMARKS, DACAPO, emit, pct
from benchmarks.conftest import once
from repro.jvm.components import Component


def heap_for(name):
    return 48 if name in DACAPO else 32


def build(cache):
    return {
        name: cache.get(
            name, collector="SemiSpace", heap_mb=heap_for(name)
        )
        for name in ALL_BENCHMARKS
    }


def test_sec6a_energy_claims(benchmark, cache):
    records = once(benchmark, lambda: build(cache))

    base = {n: r.frac(Component.BASE) for n, r in records.items()}
    opt = {n: r.frac(Component.OPT) for n, r in records.items()}
    cl = {n: r.frac(Component.CL) for n, r in records.items()}
    n = len(records)

    opt_max = max(opt, key=opt.get)
    cl_max = max(cl, key=cl.get)
    lines = [
        "Section VI-A: compiler and class-loader energy",
        "",
        f"base compiler: avg {pct(sum(base.values()) / n)}% "
        "(paper: <1%)",
        f"optimizing compiler: avg {pct(sum(opt.values()) / n)}% "
        f"(paper ~3%), max {pct(opt[opt_max])}% on {opt_max} "
        "(paper: 7% on _222_mpegaudio)",
        f"class loader: avg {pct(sum(cl.values()) / n)}% "
        f"(paper ~3%), max {pct(cl[cl_max])}% on {cl_max} "
        "(paper: 24% on fop)",
    ]
    emit("sec6a_energy_claims", "\n".join(lines))

    assert sum(base.values()) / n < 0.01
    assert 0.01 < sum(opt.values()) / n < 0.06
    assert opt["_222_mpegaudio"] == max(opt.values())
    assert cl["fop"] == max(cl.values())
    assert cl["fop"] > 0.15
    assert sum(cl.values()) / n < 0.06
