"""Figure 7: energy-delay product vs heap size, all four collectors.

Paper: generational collectors offer the best EDP; non-generational
collectors approach them as the heap grows; EDP falls steeply with heap
size where the GC dominates ("quadratic effect").
"""

import math


from benchmarks.common import (
    ALL_BENCHMARKS,
    DACAPO,
    JIKES_HEAPS,
    cell,
    emit,
)
from benchmarks.conftest import once

COLLECTORS = ("SemiSpace", "MarkSweep", "GenCopy", "GenMS")


def heaps_for(name):
    # DaCapo sweeps start at 48 MB in the paper's figures.
    if name in DACAPO:
        return tuple(h for h in JIKES_HEAPS if h >= 48)
    return JIKES_HEAPS


def build(cache):
    wanted = {
        (name, collector, heap): cell(
            name, collector=collector, heap_mb=heap
        )
        for name in ALL_BENCHMARKS
        for collector in COLLECTORS
        for heap in heaps_for(name)
    }
    by_config = cache.get_many(wanted.values())
    return {key: by_config[cfg] for key, cfg in wanted.items()}


def test_fig07_edp(benchmark, cache):
    grid = once(benchmark, lambda: build(cache))

    lines = ["Figure 7: EDP (joule-seconds) vs heap size, Jikes RVM",
             ""]
    for name in ALL_BENCHMARKS:
        heaps = heaps_for(name)
        lines.append(name)
        header = f"  {'collector':10s}" + "".join(
            f"{h:>9d}" for h in heaps
        )
        lines.append(header)
        for collector in COLLECTORS:
            cells = []
            for heap in heaps:
                rec = grid[(name, collector, heap)]
                cells.append(
                    f"{'OOM':>9s}" if rec.oom else f"{rec.edp:9.0f}"
                )
            lines.append(f"  {collector:10s}" + "".join(cells))
        lines.append("")
    lines.append(
        "paper: generational collectors give the best EDP; "
        "non-generational efficiency approaches generational as the "
        "heap grows"
    )
    emit("fig07_edp", "\n".join(lines))

    # Shape assertions (ignoring OOM cells).
    def edp(name, collector, heap):
        rec = grid[(name, collector, heap)]
        return math.inf if rec.oom else rec.edp

    # 1. Generational collectors win at the smallest heap for the
    #    allocation-heavy benchmarks.
    for name in ("_213_javac", "_202_jess", "_227_mtrt", "jython"):
        h = heaps_for(name)[0]
        best_gen = min(edp(name, "GenCopy", h), edp(name, "GenMS", h))
        worst_nongen = max(
            edp(name, "SemiSpace", h), edp(name, "MarkSweep", h)
        )
        assert best_gen < worst_nongen, name

    # 2. The gap closes at the largest heap: SemiSpace comes within
    #    ~20 % of GenCopy for most benchmarks.
    close = 0
    for name in ALL_BENCHMARKS:
        h = heaps_for(name)[-1]
        if edp(name, "SemiSpace", h) <= 1.2 * edp(name, "GenCopy", h):
            close += 1
    assert close >= 12

    # 3. EDP is non-increasing (within noise) with heap size for
    #    SemiSpace on GC-bound benchmarks.
    for name in ("_213_javac", "_227_mtrt", "jython", "pmd"):
        series = [edp(name, "SemiSpace", h) for h in heaps_for(name)]
        finite = [v for v in series if math.isfinite(v)]
        assert finite[0] == max(finite)
        assert finite[-1] == min(finite)

    # 4. Every configuration that the paper plots actually ran.
    ran = sum(0 if rec.oom else 1 for rec in grid.values())
    assert ran == len(grid)
