"""Extension: memory-boundness DVFS governing (Section VII, refs
[34]-[36]).

Compares a governed run against a fixed-frequency run on a
memory-bound benchmark (`_209_db`) and a compute-bound one
(`_222_mpegaudio`): the governor should find downscaling opportunity
in the former and stay at full speed in the latter.
"""

import numpy as np

from benchmarks.common import emit
from benchmarks.conftest import once
from repro.extensions.dvfs_governor import (
    MemoryBoundGovernor,
    governed_vm,
)
from repro.hardware.platform import make_platform
from repro.jvm.vm import JikesRVM
from repro.measurement.daq import DAQ
from repro.workloads import get_benchmark


def measure(run, platform):
    trace = DAQ(platform, np.random.default_rng(5)).acquire(
        run.timeline
    )
    energy = trace.cpu_energy_j() + trace.mem_energy_j()
    return run.duration_s, energy


def run_pair(benchmark):
    plain_platform = make_platform("p6")
    plain_vm = JikesRVM(plain_platform, collector="GenCopy",
                        heap_mb=64, seed=42)
    plain = measure(
        plain_vm.run(get_benchmark(benchmark), input_scale=0.5),
        plain_platform,
    )

    governor = MemoryBoundGovernor()
    gov_platform = make_platform("p6")
    gov = governed_vm(JikesRVM, gov_platform, governor,
                      collector="GenCopy", heap_mb=64, seed=42)
    governed = measure(
        gov.run(get_benchmark(benchmark), input_scale=0.5),
        gov_platform,
    )
    return plain, governed, governor.residency


def build():
    return {
        name: run_pair(name)
        for name in ("_209_db", "_222_mpegaudio")
    }


def test_ext_dvfs_governor(benchmark):
    results = once(benchmark, build)

    lines = [
        "Extension: memory-boundness DVFS governor "
        "('Process Cruise Control' style, paper ref [36])",
        "",
        f"{'benchmark':16s} {'mode':10s} {'time s':>8s} "
        f"{'energy J':>9s} {'EDP Js':>9s}",
        "-" * 56,
    ]
    for name, (plain, governed, residency) in results.items():
        for mode, (t, e) in (("fixed", plain), ("governed",
                                                governed)):
            lines.append(
                f"{name:16s} {mode:10s} {t:8.2f} {e:9.1f} "
                f"{e * t:9.1f}"
            )
        res_text = ", ".join(
            f"{scale:.2f}x:{100 * frac:.0f}%"
            for scale, frac in residency.items()
        )
        lines.append(f"{'':16s} residency: {res_text}")
    lines.append("")
    lines.append(
        "the governor downclocks the memory-bound benchmark (low-IPC "
        "phases) for an energy saving at modest slowdown, and leaves "
        "the compute-bound benchmark at full speed"
    )
    emit("ext_dvfs_governor", "\n".join(lines))

    db_plain, db_governed, db_res = results["_209_db"]
    mp_plain, mp_governed, mp_res = results["_222_mpegaudio"]

    # Memory-bound: meaningful time at reduced frequency, energy saved.
    assert db_res.get(1.0, 0.0) < 0.9
    assert db_governed[1] < db_plain[1]
    # Compute-bound: the governor keeps (nearly) full speed, so both
    # time and energy stay within a couple percent of fixed-frequency.
    assert mp_res.get(1.0, 0.0) > 0.8
    assert mp_governed[0] < mp_plain[0] * 1.08
