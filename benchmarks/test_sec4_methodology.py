"""Section IV: methodology-level measurements.

Regenerates the paper's stated instrumentation facts — idle power levels
(Section IV-D), sampling periods, and instrumentation perturbation — and
adds the validation the paper could not do on real hardware: measured
per-component energy vs simulated ground truth as a function of the DAQ
sampling period.
"""

import pytest

from benchmarks.common import emit
from benchmarks.conftest import once
from repro.analysis.validation import attribution_error
from repro.hardware.platform import make_platform
from repro.jvm.vm import JikesRVM
from repro.workloads import get_benchmark


def build():
    p6 = make_platform("p6")
    pxa = make_platform("pxa255")
    vm = JikesRVM(p6, collector="GenCopy", heap_mb=64, seed=42)
    run = vm.run(get_benchmark("_202_jess"))
    reports = {
        period: attribution_error(run, p6, sample_period_s=period)
        for period in (40e-6, 200e-6, 1e-3, 10e-3)
    }
    return p6, pxa, run, reports


def test_sec4_methodology(benchmark):
    p6, pxa, run, reports = once(benchmark, build)

    lines = [
        "Section IV: measurement methodology",
        "",
        "idle power (paper: P6 CPU 4.5 W / RAM 250 mW; PXA255 CPU "
        "~70 mW / RAM ~5 mW):",
        f"  P6     CPU {p6.idle_cpu_power_w():6.3f} W   RAM "
        f"{1000 * p6.idle_mem_power_w():6.1f} mW",
        f"  PXA255 CPU {pxa.idle_cpu_power_w():6.3f} W   RAM "
        f"{1000 * pxa.idle_mem_power_w():6.1f} mW",
        "",
        f"HPM sampling: P6 {p6.hpm_period_s * 1000:.0f} ms, PXA255 "
        f"{pxa.hpm_period_s * 1000:.0f} ms (paper: 1 ms / 10 ms)",
        "",
        "instrumentation perturbation (parallel-port component-ID "
        "writes):",
        f"  port writes: {run.port_writes}, cycles: "
        f"{run.perturbation_cycles} "
        f"({100 * run.perturbation_cycles / run.timeline.total_cycles:.3f}"
        "% of the run)",
        "",
        "attribution error vs DAQ sampling period (energy credited to "
        "the wrong component):",
    ]
    for period, report in sorted(reports.items()):
        lines.append(
            f"  {period * 1e6:7.0f} us: "
            f"{100 * report.total_misattribution_fraction():6.2f}%"
        )
    lines.append("")
    lines.append(
        "paper: 40 us sampling 'accurately captures all important "
        "behavior' since component durations are 100s of us"
    )
    emit("sec4_methodology", "\n".join(lines))

    assert p6.idle_cpu_power_w() == pytest.approx(4.5)
    assert pxa.idle_cpu_power_w() == pytest.approx(0.070)
    # Low perturbation: well under 1 % of cycles.
    assert run.perturbation_cycles / run.timeline.total_cycles < 0.01
    # 40 us sampling attributes energy accurately...
    assert reports[40e-6].total_misattribution_fraction() < 0.05
    # ...and error grows monotonically with the sampling period.
    errors = [
        reports[p].total_misattribution_fraction()
        for p in (40e-6, 200e-6, 1e-3, 10e-3)
    ]
    assert errors[0] < errors[-1]
