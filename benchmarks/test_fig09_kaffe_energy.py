"""Figure 9: energy distribution for Kaffe on the Pentium M.

Paper: the JVM components are far less visible than under Jikes — GC
averages about 7 %, the class loader 1 %, the JIT under 1 % — because
Kaffe's slow JIT code stretches total runtime.
"""


from benchmarks.common import ALL_BENCHMARKS, cell, emit, pct
from benchmarks.conftest import once
from repro.jvm.components import Component

HEAP = 64


def build(cache):
    wanted = {
        name: cell(name, vm="kaffe", heap_mb=HEAP)
        for name in ALL_BENCHMARKS
    }
    by_config = cache.get_many(wanted.values())
    return {name: by_config[cfg] for name, cfg in wanted.items()}


def test_fig09_kaffe_energy(benchmark, cache):
    records = once(benchmark, lambda: build(cache))

    lines = [
        f"Figure 9: Kaffe energy distribution on P6 @ {HEAP} MB",
        "",
        f"{'benchmark':16s} {'GC%':>6s} {'CL%':>6s} {'JIT%':>6s} "
        f"{'App%':>6s} {'time s':>8s}",
        "-" * 52,
    ]
    gc_fracs, cl_fracs, jit_fracs = [], [], []
    for name, rec in records.items():
        gc_fracs.append(rec.frac(Component.GC))
        cl_fracs.append(rec.frac(Component.CL))
        jit_fracs.append(rec.frac(Component.JIT))
        lines.append(
            f"{name:16s} {pct(rec.frac(Component.GC))} "
            f"{pct(rec.frac(Component.CL))} "
            f"{pct(rec.frac(Component.JIT))} "
            f"{pct(1 - rec.jvm_fraction)} {rec.duration_s:8.2f}"
        )
    n = len(records)
    lines.append("")
    lines.append(
        f"averages: GC {pct(sum(gc_fracs) / n)}%  CL "
        f"{pct(sum(cl_fracs) / n)}%  JIT {pct(sum(jit_fracs) / n)}%"
    )
    lines.append("paper: GC ~7% avg, CL ~1%, JIT <1%")
    emit("fig09_kaffe_energy", "\n".join(lines))

    assert 0.02 < sum(gc_fracs) / n < 0.12
    # The class loader averages ~1% (fop, the class-loading outlier,
    # pulls the mean up here just as it does under Jikes).
    cl_sans_fop = [
        rec.frac(Component.CL) for name, rec in records.items()
        if name != "fop"
    ]
    assert sum(cl_sans_fop) / len(cl_sans_fop) < 0.04
    assert sum(jit_fracs) / n < 0.02
    # Every benchmark remains application-dominated under Kaffe.
    assert all(rec.jvm_fraction < 0.40 for rec in records.values())
    assert sum(
        1 for rec in records.values() if rec.jvm_fraction < 0.25
    ) >= 14
