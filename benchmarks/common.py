"""Shared machinery for the figure-regeneration benchmark harness.

Every benchmark module asks the session-wide :class:`ExperimentCache`
for results; identical configurations are simulated once and reused
across figures (the Figure 7 sweep feeds Figures 6 and 8 and the
Section VI-B/VI-C claims).  Cached entries are slimmed to
:class:`BenchRecord` summaries so the cache stays small.

Figure output is written to ``benchmarks/output/*.txt`` (and echoed to
stdout) so the regenerated tables survive pytest's capture.
"""

import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.experiment import run_experiment
from repro.errors import OutOfMemoryError
from repro.jvm.components import Component

OUTPUT_DIR = Path(__file__).parent / "output"

#: All sixteen benchmark names in Figure 5 order.
SPECJVM98 = (
    "_201_compress", "_202_jess", "_209_db", "_213_javac",
    "_222_mpegaudio", "_227_mtrt", "_228_jack",
)
DACAPO = ("antlr", "fop", "jython", "pmd", "ps")
JGF = ("euler", "moldyn", "raytracer", "search")
ALL_BENCHMARKS = SPECJVM98 + DACAPO + JGF

#: Heap ladders (paper Sections IV-A and VI-E).
JIKES_HEAPS = (32, 48, 64, 80, 96, 112, 128)
PXA_HEAPS = (12, 16, 20, 24, 28, 32)

#: Set REPRO_BENCH_FAST=1 to run a thinner grid while iterating.
FAST = os.environ.get("REPRO_BENCH_FAST", "") == "1"
if FAST:
    JIKES_HEAPS = (32, 48, 128)
    PXA_HEAPS = (12, 20, 32)

SEED = 42


@dataclass
class BenchRecord:
    """Slim summary of one experiment."""

    benchmark: str
    vm: str
    platform: str
    collector: str
    heap_mb: int
    oom: bool = False
    duration_s: float = 0.0
    cpu_j: float = 0.0
    mem_j: float = 0.0
    edp: float = float("inf")
    fractions: dict = field(default_factory=dict)   # Component -> frac
    jvm_fraction: float = 0.0
    mem_ratio: float = 0.0
    avg_power: dict = field(default_factory=dict)   # Component -> W
    peak_power: dict = field(default_factory=dict)
    ipc: dict = field(default_factory=dict)
    l2_miss: dict = field(default_factory=dict)
    gc_collections: int = 0

    def frac(self, component):
        return self.fractions.get(Component(component), 0.0)


def summarize(result):
    """Fold an ExperimentResult into a :class:`BenchRecord`."""
    cfg = result.config
    profiles = result.profiles()
    return BenchRecord(
        benchmark=cfg.benchmark,
        vm=cfg.vm,
        platform=cfg.platform,
        collector=result.run.collector_name,
        heap_mb=cfg.heap_mb,
        duration_s=result.duration_s,
        cpu_j=result.cpu_energy_j,
        mem_j=result.mem_energy_j,
        edp=result.edp,
        fractions={
            comp: result.breakdown.fraction(comp)
            for comp in Component
        },
        jvm_fraction=result.breakdown.jvm_fraction(),
        mem_ratio=result.breakdown.mem_to_cpu_ratio(),
        avg_power={c: p.avg_power_w for c, p in profiles.items()},
        peak_power={c: p.peak_power_w for c, p in profiles.items()},
        ipc={c: p.ipc for c, p in profiles.items()},
        l2_miss={c: p.l2_miss_rate for c, p in profiles.items()},
        gc_collections=result.run.gc_stats.collections,
    )


class ExperimentCache:
    """Runs experiments at most once per configuration."""

    def __init__(self):
        self._records = {}

    def get(self, benchmark, vm="jikes", platform="p6",
            collector=None, heap_mb=64, input_scale=1.0, seed=SEED):
        key = (benchmark, vm, platform, collector, heap_mb,
               input_scale, seed)
        if key not in self._records:
            try:
                result = run_experiment(
                    benchmark, vm=vm, platform=platform,
                    collector=collector, heap_mb=heap_mb,
                    input_scale=input_scale, seed=seed,
                )
                self._records[key] = summarize(result)
            except OutOfMemoryError:
                self._records[key] = BenchRecord(
                    benchmark=benchmark, vm=vm, platform=platform,
                    collector=collector or "?", heap_mb=heap_mb,
                    oom=True,
                )
        return self._records[key]

    def __len__(self):
        return len(self._records)


def emit(name, text):
    """Write a regenerated figure to disk and echo it."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n=== {name} ===")
    print(text)
    return path


def pct(x):
    return f"{100.0 * x:5.1f}"
