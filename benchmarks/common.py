"""Shared machinery for the figure-regeneration benchmark harness.

Every benchmark module asks the session-wide :class:`ExperimentCache`
for results.  The cache is backed by the campaign runner
(:mod:`repro.campaign`): figure drivers batch their whole grid through
:meth:`ExperimentCache.get_many`, which executes the missing cells on a
process pool and memoizes every cell's summary both in memory and in
the campaign's on-disk cache — so identical configurations are
simulated once per machine, not once per pytest session.  Cached
entries are slimmed to :class:`BenchRecord` summaries so the cache
stays small.

Environment knobs:

* ``REPRO_BENCH_FAST=1`` — thinner heap ladders while iterating;
* ``REPRO_BENCH_WORKERS=N`` — campaign worker processes (default: CPU
  count, capped at 8);
* ``REPRO_BENCH_CACHE=0`` — disable the on-disk cell cache;
* ``REPRO_BENCH_CACHE_DIR=path`` — cache location (default
  ``benchmarks/output/cellcache``).

Figure output is written to ``benchmarks/output/*.txt`` (and echoed to
stdout) so the regenerated tables survive pytest's capture.
"""

import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.campaign import CampaignRunner
from repro.jvm.components import Component
from repro.spec import ScenarioSpec

OUTPUT_DIR = Path(__file__).parent / "output"

#: All sixteen benchmark names in Figure 5 order.
SPECJVM98 = (
    "_201_compress", "_202_jess", "_209_db", "_213_javac",
    "_222_mpegaudio", "_227_mtrt", "_228_jack",
)
DACAPO = ("antlr", "fop", "jython", "pmd", "ps")
JGF = ("euler", "moldyn", "raytracer", "search")
ALL_BENCHMARKS = SPECJVM98 + DACAPO + JGF

#: Heap ladders (paper Sections IV-A and VI-E).
JIKES_HEAPS = (32, 48, 64, 80, 96, 112, 128)
PXA_HEAPS = (12, 16, 20, 24, 28, 32)

#: Set REPRO_BENCH_FAST=1 to run a thinner grid while iterating.
FAST = os.environ.get("REPRO_BENCH_FAST", "") == "1"
if FAST:
    JIKES_HEAPS = (32, 48, 128)
    PXA_HEAPS = (12, 20, 32)

SEED = 42

#: Campaign execution knobs for the figure harness.
WORKERS = int(os.environ.get(
    "REPRO_BENCH_WORKERS", str(min(os.cpu_count() or 1, 8))
))
CACHE_DIR = (
    None
    if os.environ.get("REPRO_BENCH_CACHE", "1") == "0"
    else Path(os.environ.get(
        "REPRO_BENCH_CACHE_DIR", str(OUTPUT_DIR / "cellcache")
    ))
)

#: Short-name -> Component, for decoding cell payloads.
_NAME_TO_COMPONENT = {c.short_name: c for c in Component}


@dataclass
class BenchRecord:
    """Slim summary of one experiment."""

    benchmark: str
    vm: str
    platform: str
    collector: str
    heap_mb: int
    oom: bool = False
    duration_s: float = 0.0
    cpu_j: float = 0.0
    mem_j: float = 0.0
    edp: float = float("inf")
    fractions: dict = field(default_factory=dict)   # Component -> frac
    jvm_fraction: float = 0.0
    mem_ratio: float = 0.0
    avg_power: dict = field(default_factory=dict)   # Component -> W
    peak_power: dict = field(default_factory=dict)
    ipc: dict = field(default_factory=dict)
    l2_miss: dict = field(default_factory=dict)
    gc_collections: int = 0

    def frac(self, component):
        return self.fractions.get(Component(component), 0.0)


def summarize(result):
    """Fold an ExperimentResult into a :class:`BenchRecord`."""
    cfg = result.config
    profiles = result.profiles()
    return BenchRecord(
        benchmark=cfg.benchmark,
        vm=cfg.vm,
        platform=cfg.platform,
        collector=result.run.collector_name,
        heap_mb=cfg.heap_mb,
        duration_s=result.duration_s,
        cpu_j=result.cpu_energy_j,
        mem_j=result.mem_energy_j,
        edp=result.edp,
        fractions={
            comp: result.breakdown.fraction(comp)
            for comp in Component
        },
        jvm_fraction=result.breakdown.jvm_fraction(),
        mem_ratio=result.breakdown.mem_to_cpu_ratio(),
        avg_power={c: p.avg_power_w for c, p in profiles.items()},
        peak_power={c: p.peak_power_w for c, p in profiles.items()},
        ipc={c: p.ipc for c, p in profiles.items()},
        l2_miss={c: p.l2_miss_rate for c, p in profiles.items()},
        gc_collections=result.run.gc_stats.collections,
    )


def record_from_payload(payload):
    """Rebuild a :class:`BenchRecord` from a campaign cell payload."""
    cfg = payload["config"]
    if payload.get("oom"):
        return BenchRecord(
            benchmark=cfg["benchmark"], vm=cfg["vm"],
            platform=cfg["platform"],
            collector=cfg["collector"] or "?",
            heap_mb=cfg["heap_mb"], oom=True,
        )
    totals = payload["totals"]
    breakdown = payload["breakdown"]
    comps = {
        _NAME_TO_COMPONENT[name]: stats
        for name, stats in payload["components"].items()
    }
    return BenchRecord(
        benchmark=cfg["benchmark"],
        vm=cfg["vm"],
        platform=cfg["platform"],
        collector=cfg["collector"],
        heap_mb=cfg["heap_mb"],
        duration_s=totals["duration_s"],
        cpu_j=totals["cpu_energy_j"],
        mem_j=totals["mem_energy_j"],
        edp=totals["edp_js"],
        fractions={
            _NAME_TO_COMPONENT[name]: frac
            for name, frac in breakdown["fractions"].items()
        },
        jvm_fraction=breakdown["jvm_fraction"],
        mem_ratio=breakdown["mem_to_cpu_ratio"],
        avg_power={c: s["avg_power_w"] for c, s in comps.items()},
        peak_power={c: s["peak_power_w"] for c, s in comps.items()},
        ipc={c: s["ipc"] for c, s in comps.items()},
        l2_miss={c: s["l2_miss_rate"] for c, s in comps.items()},
        gc_collections=payload["gc"]["collections"],
    )


def cell(benchmark, vm="jikes", platform="p6", collector=None,
         heap_mb=64, input_scale=1.0, seed=SEED):
    """One figure-grid cell as an :class:`ExperimentConfig`.

    Routed through the scenario layer so figure cells are the same
    objects a spec file or the CLI flag path would build.
    """
    return ScenarioSpec.for_experiment(
        benchmark, vm=vm, platform=platform, collector=collector,
        heap_mb=heap_mb, input_scale=input_scale, seed=seed,
    ).experiment_config()


class ExperimentCache:
    """Runs experiments at most once per configuration.

    Cells execute through the campaign runner: batched lookups
    (:meth:`get_many`) run all missing cells in one parallel campaign;
    the on-disk cell cache persists results across pytest sessions.
    """

    def __init__(self, workers=WORKERS, cache_dir=CACHE_DIR):
        self._records = {}
        self._runner = CampaignRunner(
            workers=workers, cache_dir=cache_dir, retries=1,
        )

    def get_many(self, configs):
        """BenchRecords for *configs* (an ExperimentConfig iterable),
        returned as ``{config: record}``; missing cells run as one
        campaign."""
        configs = list(configs)
        missing = [
            c for c in dict.fromkeys(configs) if c not in self._records
        ]
        if missing:
            outcome = self._runner.run(missing)
            for cell_result in outcome.cells:
                if not cell_result.ok:
                    raise RuntimeError(
                        "campaign cell failed for "
                        f"{cell_result.config}: "
                        f"[{cell_result.error_type}] {cell_result.error}"
                    )
                self._records[cell_result.config] = record_from_payload(
                    cell_result.payload
                )
        return {c: self._records[c] for c in configs}

    def get(self, benchmark, vm="jikes", platform="p6",
            collector=None, heap_mb=64, input_scale=1.0, seed=SEED):
        config = cell(
            benchmark, vm=vm, platform=platform, collector=collector,
            heap_mb=heap_mb, input_scale=input_scale, seed=seed,
        )
        return self.get_many([config])[config]

    def __len__(self):
        return len(self._records)


def emit(name, text):
    """Write a regenerated figure to disk and echo it."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n=== {name} ===")
    print(text)
    return path


def pct(x):
    return f"{100.0 * x:5.1f}"
