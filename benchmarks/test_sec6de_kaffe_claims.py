"""Sections VI-D/VI-E: Kaffe-specific power claims.

* Kaffe's mark-sweep collector draws about 12.8 W on the P6 platform,
  similar to the Jikes mark-sweep collector, and less than the other
  measured Kaffe components' surroundings;
* on the PXA255, the ordering inverts: the GC becomes the most
  power-hungry component (~270 mW, ~7 % above the application) and the
  class loader the least (fetch/data stalls).
"""

import pytest

from benchmarks.common import emit
from benchmarks.conftest import once
from repro.jvm.components import Component
from repro.workloads.specjvm98 import (
    PXA255_BENCHMARKS,
    S10_INPUT_SCALE,
)


def build(cache):
    p6 = {
        name: cache.get(name, vm="kaffe", heap_mb=64)
        for name in ("_202_jess", "_213_javac", "_228_jack")
    }
    jikes_ms = cache.get("_213_javac", collector="MarkSweep",
                         heap_mb=64)
    pxa = {
        name: cache.get(
            name, vm="kaffe", platform="pxa255", heap_mb=16,
            input_scale=S10_INPUT_SCALE,
        )
        for name in PXA255_BENCHMARKS
    }
    return p6, jikes_ms, pxa


def test_sec6de_kaffe_claims(benchmark, cache):
    p6, jikes_ms, pxa = once(benchmark, lambda: build(cache))

    kaffe_gc_p = [
        r.avg_power[Component.GC] for r in p6.values()
        if Component.GC in r.avg_power
    ]
    kaffe_gc_avg = sum(kaffe_gc_p) / len(kaffe_gc_p)
    jikes_ms_gc = jikes_ms.avg_power[Component.GC]

    pxa_gc = [r.avg_power[Component.GC] for r in pxa.values()]
    pxa_app = [r.avg_power[Component.APP] for r in pxa.values()]
    pxa_cl = [r.avg_power[Component.CL] for r in pxa.values()]
    gc_avg = sum(pxa_gc) / len(pxa_gc)
    app_avg = sum(pxa_app) / len(pxa_app)
    cl_avg = sum(pxa_cl) / len(pxa_cl)

    lines = [
        "Sections VI-D/E: Kaffe power behavior",
        "",
        f"Kaffe MS GC power on P6: {kaffe_gc_avg:.2f} W "
        f"(paper ~12.8 W); Jikes MarkSweep GC: {jikes_ms_gc:.2f} W",
        "",
        "PXA255 component power (mW), averaged over the -s10 runs:",
        f"  GC  {1000 * gc_avg:6.0f}  (paper ~270, the most "
        "power-hungry component)",
        f"  App {1000 * app_avg:6.0f}  (paper: ~7% below the GC)",
        f"  CL  {1000 * cl_avg:6.0f}  (paper: the least power-hungry "
        "— fetch/data stalls)",
        "",
        f"GC draws {100 * (gc_avg / app_avg - 1):.1f}% more power "
        "than the application on the PXA255",
    ]
    emit("sec6de_kaffe_claims", "\n".join(lines))

    # P6: Kaffe's MS collector sits near the Jikes MS collector.
    assert kaffe_gc_avg == pytest.approx(12.8, abs=1.2)
    assert kaffe_gc_avg == pytest.approx(jikes_ms_gc, abs=1.0)
    # PXA255: inverted ordering, sub-watt magnitudes.
    assert gc_avg > app_avg > cl_avg
    assert 0.22 < gc_avg < 0.33
    assert 0.0 < (gc_avg / app_avg - 1) < 0.35
