"""Extension: GC pause behavior and minimum mutator utilization.

The paper's energy story has a responsiveness counterpart: the same
collector choice that sets the GC's energy share also sets how long the
application stops.  This study reports pause statistics and the MMU
curve for all four collectors on `_213_javac` at a tight heap — the
classic picture of why generational collectors are preferred
interactively even where their EDP advantage is modest.
"""

import pytest

from benchmarks.common import emit
from benchmarks.conftest import once
from repro.analysis.pauses import mmu_curve, pause_stats
from repro.hardware.platform import make_platform
from repro.jvm.vm import JikesRVM
from repro.workloads import get_benchmark

COLLECTORS = ("SemiSpace", "MarkSweep", "GenCopy", "GenMS")
WINDOWS = (0.005, 0.01, 0.02, 0.05, 0.1, 0.25)


def build():
    out = {}
    for collector in COLLECTORS:
        vm = JikesRVM(make_platform("p6"), collector=collector,
                      heap_mb=48, seed=42)
        run = vm.run(get_benchmark("_213_javac"), input_scale=0.5)
        out[collector] = {
            "stats": pause_stats(run.timeline),
            "mmu": mmu_curve(run.timeline, windows_s=WINDOWS),
        }
    return out


def test_ext_pauses(benchmark):
    results = once(benchmark, build)

    lines = [
        "Extension: GC pauses and minimum mutator utilization "
        "(javac, 48 MB, half input)",
        "",
        f"{'collector':10s} {'pauses':>7s} {'mean ms':>8s} "
        f"{'p95 ms':>7s} {'max ms':>7s} {'total ms':>9s}",
        "-" * 54,
    ]
    for collector, data in results.items():
        s = data["stats"]
        lines.append(
            f"{collector:10s} {s.count:7d} {1000 * s.mean_s:8.2f} "
            f"{1000 * s.p95_s:7.2f} {1000 * s.max_s:7.2f} "
            f"{1000 * s.total_s:9.0f}"
        )
    lines.append("")
    header = f"{'MMU window':>12s}" + "".join(
        f"{1000 * w:>9.0f}ms" for w in WINDOWS
    )
    lines.append(header)
    for collector, data in results.items():
        lines.append(
            f"{collector:>12s}" + "".join(
                f"{v:11.2f}" for _, v in data["mmu"]
            )
        )
    lines.append("")
    lines.append(
        "generational collectors take many short pauses (high MMU at "
        "small windows); full-heap collectors take few long ones "
        "(MMU = 0 until the window exceeds their max pause)"
    )
    emit("ext_pauses", "\n".join(lines))

    ss = results["SemiSpace"]["stats"]
    gencopy = results["GenCopy"]["stats"]
    genms = results["GenMS"]["stats"]
    # Generational pauses are shorter (p95: minors dominate) but far
    # more frequent.
    assert gencopy.p95_s < 0.7 * ss.p95_s
    assert genms.p95_s < 0.5 * ss.p95_s
    assert gencopy.count > 2 * ss.count
    # Every collector recovers mutator utilization by the largest
    # window, and none delivers any at windows under its shortest
    # relevant pause.  (MMU need not be monotone in the window size —
    # clustered pauses can dip it — so we assert levels, not shape.)
    for data in results.values():
        mmu_by_window = dict(data["mmu"])
        assert mmu_by_window[0.005] == pytest.approx(0.0)
        assert mmu_by_window[0.25] > 0.4
