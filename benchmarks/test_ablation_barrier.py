"""Ablation: write-barrier cost and the `_209_db` crossover.

Section VI-B explains SemiSpace's 5 % EDP win over GenCopy on `_209_db`
at 128 MB as compacted-mutator locality minus "a slight performance
overhead of write barriers".  This ablation dials the modeled barrier
overhead and shows the crossover is *caused* by it: with a free barrier
GenCopy keeps its generational advantage; at the calibrated ~1.5 %
overhead (and beyond) SemiSpace wins at large heaps.
"""


from benchmarks.common import emit
from benchmarks.conftest import once
from repro.hardware.platform import make_platform
from repro.jvm.gc.generational import GenCopy
from repro.jvm.vm import JikesRVM
from repro.workloads import get_benchmark

BARRIER_OVERHEADS = (0.0, 0.015, 0.04)
HEAP_MB = 128


def run_gencopy(barrier_overhead):
    class _Barrier(GenCopy):
        pass

    _Barrier.barrier_overhead = barrier_overhead

    class _VM(JikesRVM):
        def _make_collector(self, rng):
            return _Barrier(self.heap_bytes, rng)

    platform = make_platform("p6")
    vm = _VM(platform, collector="GenCopy", heap_mb=HEAP_MB, seed=42)
    run = vm.run(get_benchmark("_209_db"), input_scale=0.6)
    import numpy as np

    from repro.measurement.daq import DAQ

    trace = DAQ(platform, np.random.default_rng(7)).acquire(
        run.timeline
    )
    energy = trace.cpu_energy_j() + trace.mem_energy_j()
    return run.duration_s, energy * run.duration_s


def run_semispace():
    platform = make_platform("p6")
    vm = JikesRVM(platform, collector="SemiSpace", heap_mb=HEAP_MB,
                  seed=42)
    run = vm.run(get_benchmark("_209_db"), input_scale=0.6)
    import numpy as np

    from repro.measurement.daq import DAQ

    trace = DAQ(platform, np.random.default_rng(7)).acquire(
        run.timeline
    )
    energy = trace.cpu_energy_j() + trace.mem_energy_j()
    return run.duration_s, energy * run.duration_s


def build():
    ss_time, ss_edp = run_semispace()
    rows = []
    for overhead in BARRIER_OVERHEADS:
        time, edp = run_gencopy(overhead)
        rows.append({
            "overhead": overhead,
            "time_s": time,
            "edp": edp,
            "ss_advantage": 1 - ss_edp / edp,
        })
    return ss_edp, rows


def test_ablation_write_barrier(benchmark):
    ss_edp, rows = once(benchmark, build)

    lines = [
        "Ablation: GenCopy write-barrier overhead "
        f"(_209_db @ {HEAP_MB} MB, 0.6 input)",
        "",
        f"SemiSpace EDP: {ss_edp:.1f} Js",
        "",
        f"{'barrier %':>10s} {'GenCopy s':>10s} {'GenCopy EDP':>12s} "
        f"{'SS advantage':>13s}",
        "-" * 48,
    ]
    for r in rows:
        lines.append(
            f"{100 * r['overhead']:10.1f} {r['time_s']:10.2f} "
            f"{r['edp']:12.1f} {100 * r['ss_advantage']:12.1f}%"
        )
    lines.append("")
    lines.append(
        "the _209_db crossover (paper: SemiSpace ~5% better at "
        "128 MB) appears once the barrier costs ~1.5% of mutator "
        "instructions, and widens with barrier cost"
    )
    emit("ablation_barrier", "\n".join(lines))

    # EDP grows monotonically with barrier overhead.
    edps = [r["edp"] for r in rows]
    assert edps == sorted(edps)
    # At the calibrated overhead SemiSpace holds a small advantage.
    calibrated = rows[1]
    assert calibrated["ss_advantage"] > 0.0
    # With a free barrier the advantage shrinks markedly or reverses.
    assert rows[0]["ss_advantage"] < calibrated["ss_advantage"]
