"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that editable installs work in
offline environments whose setuptools lacks PEP 660 support (legacy
``pip install -e . --no-use-pep517`` path).
"""

from setuptools import setup

setup()
